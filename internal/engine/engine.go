// Package engine is the serving-grade execution layer between the public
// API and the run-time stage in internal/core. The paper's premise is
// that the install-time stage is paid once and the run-time stage is
// cheap per call; the engine makes the run-time stage itself near-free in
// steady state:
//
//   - a sharded, bounded plan cache keyed by the full problem descriptor
//     (op kind, dtype, dims, trans/side/uplo/diag, count bucket) memoizes
//     NewGEMMPlan/NewTRSMPlan/... so planning runs once per shape, not
//     once per call; concurrent cold-start misses on one key are
//     single-flighted so each plan is built exactly once;
//   - packing buffers come from size-class pools (internal/bufpool);
//   - parallel execution runs on the persistent worker pool
//     (internal/sched) instead of goroutine-per-call;
//   - a single generic dispatch path (Run) does all shape checking and
//     f32/f64 selection, collapsing the per-op wrappers in the public
//     package into thin shims. Validation errors are typed (ErrShape,
//     ErrCount, ErrDType, ErrOperand) and always name the op and the
//     offending operand;
//   - every call feeds the per-shape observability layer (internal/obs):
//     rolling latency histograms, achieved GFLOPS vs the plan's
//     CMAR-predicted ceiling, plan-cache outcomes, and an optional trace
//     hook that emits the assembled command queue of a sampled call.
//
// Scalars (alpha, beta) and the exact batch count are excluded from the
// cache key — plan geometry does not depend on them — and are spliced
// into a stack copy of the cached plan at dispatch time, so calls that
// differ only in scalars or count still hit the cache.
package engine

import (
	"context"
	"fmt"
	"math/bits"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"iatf/internal/bufpool"
	"iatf/internal/core"
	"iatf/internal/ktmpl"
	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/obs"
	"iatf/internal/sched"
	"iatf/internal/vec"
)

// OpKind selects the routine an OpDesc describes.
type OpKind int

// The batched routines the engine dispatches: the level-3 ops through
// Run/Submit, the in-place factorizations through RunFactor/RunLUPiv.
const (
	OpGEMM OpKind = iota
	OpTRSM
	OpTRMM
	OpSYRK
	OpLU
	OpCholesky
	OpLUPiv
)

// String returns the routine name.
func (k OpKind) String() string {
	switch k {
	case OpGEMM:
		return "GEMM"
	case OpTRSM:
		return "TRSM"
	case OpTRMM:
		return "TRMM"
	case OpSYRK:
		return "SYRK"
	case OpLU:
		return "LU"
	case OpCholesky:
		return "CHOL"
	case OpLUPiv:
		return "LUPIV"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// OpDesc describes one batched call: the routine, its mode flags and
// scalars, and the worker request. Dimensions are taken from the
// operands. Workers <= 0 means auto (GOMAXPROCS); Workers == 1 is
// serial.
type OpDesc struct {
	Kind           OpKind
	TransA, TransB matrix.Trans // TransB is GEMM-only; TransA doubles as SYRK's Trans
	Side           matrix.Side  // TRSM/TRMM
	Uplo           matrix.Uplo  // TRSM/TRMM/SYRK
	Diag           matrix.Diag  // TRSM/TRMM
	Alpha, Beta    complex128   // Beta is GEMM/SYRK-only
	Workers        int

	// Priority is the request's dispatch class: when two drained bundles
	// share the earliest context deadline (or neither has one), the bundle
	// holding the higher Priority executes first. It affects only the
	// EDF ordering pass — never results, plan identity, shard routing or
	// coalescing (requests differing only in Priority still fuse, and the
	// bundle ranks by its most urgent rider).
	Priority int

	// Trace is the request's end-to-end correlation id and Origin the
	// tenant it was submitted on behalf of. Both are observability-only:
	// stamped onto the request's lifecycle span (Origin additionally
	// keys per-tenant SLO accounting) and — like Priority — excluded
	// from plan identity, shard routing and coalescing.
	Trace  string
	Origin string
}

// Operand is a type-erased compact batch: exactly one of F32/F64 is set
// (complex types travel on the split-plane representation of their real
// component type). The zero Operand stands for a nil/empty argument.
type Operand struct {
	DT  vec.DType
	F32 *layout.Compact[float32]
	F64 *layout.Compact[float64]
}

func (o Operand) valid() bool { return o.F32 != nil || o.F64 != nil }

func (o Operand) rows() int {
	if o.F32 != nil {
		return o.F32.Rows
	}
	return o.F64.Rows
}

func (o Operand) cols() int {
	if o.F32 != nil {
		return o.F32.Cols
	}
	return o.F64.Cols
}

func (o Operand) count() int {
	if o.F32 != nil {
		return o.F32.Count
	}
	return o.F64.Count
}

func (o Operand) groups() int {
	if o.F32 != nil {
		return o.F32.Groups()
	}
	return o.F64.Groups()
}

// planKey is the full problem descriptor a cached plan is keyed by.
// Scalars are excluded (plan geometry ignores them); the batch count is
// bucketed to the next power of two so nearby counts share a plan.
type planKey struct {
	kind           OpKind
	dt             vec.DType
	m, n, k        int
	transA, transB matrix.Trans
	side           matrix.Side
	uplo           matrix.Uplo
	diag           matrix.Diag
	countBucket    int
}

func (k planKey) shard() int {
	h := uint64(k.kind)
	for _, v := range [...]int{int(k.dt), k.m, k.n, k.k, int(k.transA), int(k.transB),
		int(k.side), int(k.uplo), int(k.diag), k.countBucket} {
		h = h*0x100000001b3 + uint64(v) // FNV-style mix
	}
	return int(h % planShards)
}

// countBucket rounds a batch count up to the next power of two. Plans
// built for the bucket are valid for any smaller count: GroupsPerBatch is
// only capped by the count, and the executors clamp super-batches to the
// actual group range.
func countBucket(c int) int {
	if c <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(c-1))
}

const (
	planShards   = 16
	planShardCap = 256 // per-shard bound; oldest-arbitrary eviction past it
)

// planCall is one in-flight plan build; waiters block on done
// (single-flight).
type planCall struct {
	done chan struct{}
	val  any
	err  error
}

type planShard struct {
	mu       sync.Mutex
	m        map[planKey]any
	building map[planKey]*planCall
	// hydrated marks entries installed from the persistent autotune
	// store whose first use is still pending: that first call reports
	// obs.CacheHydrated so the per-shape series records the plan's
	// static decisions (ceiling, packing, batch size) the way a miss
	// would — without ever counting as a miss.
	hydrated map[planKey]bool
}

// Engine owns a tuning configuration, the plan cache for it and the
// per-shape observability registry. All public API calls route through
// the process-wide Default engine; New builds private engines (isolated
// cache and counters) for tests, ablation tunings, or multi-tenant
// serving.
type Engine struct {
	tun    core.Tuning
	rt     *core.Runtime // per-engine worker pool + buffer pools
	shards [planShards]planShard
	obs    *obs.Registry
	packs  packCache
	queue  submitQueue

	planHits      atomic.Uint64
	planMisses    atomic.Uint64
	planShared    atomic.Uint64
	planEvictions atomic.Uint64
	planHydrated  atomic.Uint64 // plan-cache entries installed from the store

	// Persistent autotune store attachment (SetStorePath/LoadStore/
	// SaveStore in store.go). fp is the engine tuning's fingerprint,
	// computed once at construction.
	fp         string
	storeMu    sync.Mutex
	storePath  string
	storeState storeCounters

	// Chain-plan cache (RunChain): whole-chain analyses keyed by the
	// hashed chain identity, with full-descriptor equality on lookup.
	chainMu    sync.Mutex
	chainPlans map[uint64][]*chainPlan
	chainOrder []uint64

	chainHits     atomic.Uint64
	chainMisses   atomic.Uint64
	chainRuns     atomic.Uint64
	scatterElided atomic.Uint64
	packElided    atomic.Uint64

	// profLabels gates pprof label application around compute (one atomic
	// load per dispatch when off). Off by default: building the label set
	// allocates, which would break the warm-path alloc bounds.
	profLabels atomic.Bool
}

// New constructs an engine for a tuning configuration. Every engine owns
// an isolated core.Runtime (worker pool + buffer pools), so engines —
// and in particular EngineSet shards — never contend on shared execution
// state.
func New(tun core.Tuning) *Engine {
	e := &Engine{tun: tun, rt: core.NewRuntime(), obs: obs.NewRegistry(), fp: tun.Fingerprint()}
	for i := range e.shards {
		e.shards[i].m = make(map[planKey]any)
		e.shards[i].building = make(map[planKey]*planCall)
		e.shards[i].hydrated = make(map[planKey]bool)
	}
	e.packs.m = make(map[packKey]*packEntry)
	e.chainPlans = make(map[uint64][]*chainPlan)
	return e
}

var defaultEngine = New(core.DefaultTuning())

// Default returns the process-wide engine.
func Default() *Engine { return defaultEngine }

// Tuning returns the engine's tuning configuration.
func (e *Engine) Tuning() core.Tuning { return e.tun }

// Obs returns the engine's per-shape observability registry (trace hook
// installation, shape snapshots).
func (e *Engine) Obs() *obs.Registry { return e.obs }

// plan returns the cached plan for key, building and inserting it on
// miss. Concurrent misses on the same key are single-flighted: exactly
// one goroutine runs build (counted as the one miss), the rest wait for
// its result (counted as shared). Failed builds are not cached.
func (e *Engine) plan(key planKey, build func() (any, error)) (any, obs.CacheOutcome, error) {
	sh := &e.shards[key.shard()]
	sh.mu.Lock()
	if p, ok := sh.m[key]; ok {
		if len(sh.hydrated) > 0 && sh.hydrated[key] {
			delete(sh.hydrated, key)
			sh.mu.Unlock()
			e.planHits.Add(1)
			return p, obs.CacheHydrated, nil
		}
		sh.mu.Unlock()
		e.planHits.Add(1)
		return p, obs.CacheHit, nil
	}
	if c, ok := sh.building[key]; ok {
		sh.mu.Unlock()
		<-c.done
		e.planShared.Add(1)
		return c.val, obs.CacheShared, c.err
	}
	c := &planCall{done: make(chan struct{})}
	sh.building[key] = c
	sh.mu.Unlock()
	e.planMisses.Add(1)
	c.val, c.err = build()
	sh.mu.Lock()
	delete(sh.building, key)
	if c.err == nil {
		if _, ok := sh.m[key]; !ok && len(sh.m) >= planShardCap {
			for k := range sh.m {
				delete(sh.m, k)
				delete(sh.hydrated, k)
				e.planEvictions.Add(1)
				break
			}
		}
		sh.m[key] = c.val
		delete(sh.hydrated, key)
	}
	sh.mu.Unlock()
	close(c.done)
	return c.val, obs.CacheMiss, c.err
}

// Stats is a point-in-time snapshot of the engine counters. Plan-cache
// counters and per-shape series are per-engine; buffer-pool and
// worker-pool counters are process-wide (those layers are shared by all
// engines).
type Stats struct {
	// Plan cache (this engine).
	PlanHits      uint64
	PlanMisses    uint64
	PlanShared    uint64 // calls that waited on another call's in-flight build
	PlanEvictions uint64
	PlanEntries   int
	// PlanHydrated counts plan-cache entries installed from the
	// persistent autotune store — kept distinct from PlanMisses so the
	// achieved-vs-CMAR-ceiling reporting stays honest: a hydrated plan
	// was tuned once, in some earlier process, not by this call.
	PlanHydrated uint64

	// Persistent autotune store (this engine).
	Store StoreStats

	// Packed-operand cache (this engine).
	PackCache PackCacheStats

	// Chain dispatch (this engine).
	Chain ChainStats

	// Async submission queue (this engine).
	Queue QueueStats

	// Per-shape rolling series (this engine), ordered by call count.
	Shapes []obs.ShapeSnapshot

	// Per-tenant SLO series (this engine), ordered by request count;
	// nil when tenant accounting is disabled.
	Tenants []obs.TenantSnapshot

	// Packing-buffer pools (this engine's Runtime).
	Buffers bufpool.Stats

	// Persistent worker pool (this engine's Runtime).
	Sched sched.Stats

	// Streaming pack/compute pipeline (process-wide).
	Pipeline core.PipelineStats
}

// Add accumulates another engine's counters into s — the cross-shard
// aggregate view of an EngineSet. Shapes and Tenants are NOT merged here
// (the set merges them once via obs.AggregateShapes/AggregateTenants);
// Pipeline is process-wide state and is kept, not summed.
func (s *Stats) Add(o Stats) {
	s.PlanHits += o.PlanHits
	s.PlanMisses += o.PlanMisses
	s.PlanShared += o.PlanShared
	s.PlanEvictions += o.PlanEvictions
	s.PlanEntries += o.PlanEntries
	s.PlanHydrated += o.PlanHydrated
	s.Store.Add(o.Store)
	s.PackCache.Add(o.PackCache)
	s.Chain.Add(o.Chain)
	s.Queue.Add(o.Queue)
	s.Buffers.Add(o.Buffers)
	s.Sched.Add(o.Sched)
}

// ChainStats is a snapshot of the chain dispatch counters.
type ChainStats struct {
	Runs          uint64 // chains executed (sync, async and fused)
	PlanHits      uint64 // chain-plan cache hits
	PlanMisses    uint64 // chain-plan cache misses (analyses built)
	PlanEntries   int    // cached chain plans
	ScatterElided uint64 // producer stages that skipped the B scatter
	PackElided    uint64 // consumer stages that started from a donated image
}

// Add accumulates another engine's chain counters (EngineSet aggregate).
func (s *ChainStats) Add(o ChainStats) {
	s.Runs += o.Runs
	s.PlanHits += o.PlanHits
	s.PlanMisses += o.PlanMisses
	s.PlanEntries += o.PlanEntries
	s.ScatterElided += o.ScatterElided
	s.PackElided += o.PackElided
}

func (e *Engine) chainStats() ChainStats {
	e.chainMu.Lock()
	entries := 0
	for _, bucket := range e.chainPlans {
		entries += len(bucket)
	}
	e.chainMu.Unlock()
	return ChainStats{
		Runs:          e.chainRuns.Load(),
		PlanHits:      e.chainHits.Load(),
		PlanMisses:    e.chainMisses.Load(),
		PlanEntries:   entries,
		ScatterElided: e.scatterElided.Load(),
		PackElided:    e.packElided.Load(),
	}
}

// Stats returns the current counters.
func (e *Engine) Stats() Stats {
	entries := 0
	for i := range e.shards {
		e.shards[i].mu.Lock()
		entries += len(e.shards[i].m)
		e.shards[i].mu.Unlock()
	}
	return Stats{
		PlanHits:      e.planHits.Load(),
		PlanMisses:    e.planMisses.Load(),
		PlanShared:    e.planShared.Load(),
		PlanEvictions: e.planEvictions.Load(),
		PlanEntries:   entries,
		PlanHydrated:  e.planHydrated.Load(),
		Store:         e.storeStats(),
		PackCache:     e.packs.snapshot(),
		Chain:         e.chainStats(),
		Queue:         e.queue.snapshot(),
		Shapes:        e.obs.Snapshot(),
		Tenants:       e.obs.TenantSnapshots(),
		Buffers:       e.rt.Bufs.Snapshot(),
		Sched:         e.rt.Sched.Snapshot(),
		Pipeline:      core.PipelineSnapshot(),
	}
}

// Run is the single dispatch path: it validates operand shapes for the
// described op, resolves the plan through the cache, and executes on the
// native backend. Operand order follows BLAS argument order:
// GEMM (A, B, C) — TRSM/TRMM (A, B) — SYRK (A, C).
//
// When a span sink is installed on the engine's registry, the call
// carries a lifecycle span (plan/pack/compute phase attribution); with no
// sink the span cost is one atomic load.
func (e *Engine) Run(op OpDesc, operands ...Operand) error {
	sp := e.obs.StartSpan(e.forceSpan(&op))
	stampSpan(sp, &op)
	err := e.run(op, sp, operands...)
	e.obs.FinishSpan(sp, err, nil)
	return err
}

// forceSpan reports whether a request must carry a span even without a
// sink: tenant-tagged requests need one when accounting is on, because
// FinishSpan is where the tenant ledger records. Untagged requests pay
// a nil-string check; tagged requests on an engine without a tenant
// table pay one atomic load.
func (e *Engine) forceSpan(op *OpDesc) bool {
	return op.Origin != "" && e.obs.TenantsEnabled()
}

// stampSpan threads the request's correlation identity onto its span.
// Applied at the entry wrappers (Run/RunSpanned/SubmitSpanned), not
// inside run, so a fused dispatch's parent span never inherits the lead
// rider's trace id.
func stampSpan(sp *obs.Span, op *OpDesc) {
	if sp == nil {
		return
	}
	sp.TraceID = op.Trace
	sp.Origin = op.Origin
}

// RunSpanned is Run with a per-call span sink: the request's completed
// span is delivered to sink (after the engine-level sink, if any) even
// when no engine-level sink is installed. sink must copy the span if it
// retains it.
func (e *Engine) RunSpanned(op OpDesc, sink obs.SpanFunc, operands ...Operand) error {
	if sink == nil {
		return e.Run(op, operands...)
	}
	sp := e.obs.StartSpan(true)
	stampSpan(sp, &op)
	err := e.run(op, sp, operands...)
	e.obs.FinishSpan(sp, err, sink)
	return err
}

// SetTenants installs the engine's per-tenant SLO objectives and enables
// tenant accounting: every request whose OpDesc carries an Origin is
// classified into its tenant's rolling series (requests, errors, sheds,
// deadline hits/misses, latency histogram, sliding-window burn rate).
// Origins not in cfg are tracked with a zero objective; nil disables
// accounting.
func (e *Engine) SetTenants(cfg map[string]obs.TenantObjective) { e.obs.SetTenants(cfg) }

// TenantStats returns the per-tenant SLO series, ordered by request
// count (nil when accounting is disabled).
func (e *Engine) TenantStats() []obs.TenantSnapshot { return e.obs.TenantSnapshots() }

// RecordTenantShed accounts one admission-control shed for a tenant — a
// request a front tier rejected before submitting, so no span carries
// it. No-op when accounting is disabled.
func (e *Engine) RecordTenantShed(name string) { e.obs.RecordTenantShed(name) }

// SetProfileLabels enables pprof goroutine labels ({op, dtype, shape})
// around compute, so CPU profiles attribute kernel samples to problem
// shapes. Off by default: label construction allocates per dispatch.
func (e *Engine) SetProfileLabels(on bool) { e.profLabels.Store(on) }

// profileLabels returns the label context for a dispatch when labeling is
// enabled, else nil (one atomic load).
func (e *Engine) profileLabels(op string, dt vec.DType, m, n, k int) context.Context {
	if !e.profLabels.Load() {
		return nil
	}
	return pprof.WithLabels(context.Background(), pprof.Labels(
		"op", op, "dtype", dt.String(), "shape", fmt.Sprintf("%dx%dx%d", m, n, k)))
}

// run dispatches with an optional lifecycle span (nil = disabled).
func (e *Engine) run(op OpDesc, sp *obs.Span, operands ...Operand) error {
	if sp != nil {
		sp.Op = op.Kind.String()
	}
	switch op.Kind {
	case OpGEMM:
		if err := checkOperands(op.Kind, operands, 3); err != nil {
			return err
		}
		return e.runGEMM(op, sp, operands[0], operands[1], operands[2])
	case OpTRSM, OpTRMM:
		if err := checkOperands(op.Kind, operands, 2); err != nil {
			return err
		}
		return e.runTri(op, sp, operands[0], operands[1])
	case OpSYRK:
		if err := checkOperands(op.Kind, operands, 2); err != nil {
			return err
		}
		return e.runSYRK(op, sp, operands[0], operands[1])
	}
	return fmt.Errorf("iatf: unknown op kind %v", op.Kind)
}

// operandNames maps BLAS argument positions to names per op kind.
var operandNames = map[OpKind][]string{
	OpGEMM: {"A", "B", "C"},
	OpTRSM: {"A", "B"},
	OpTRMM: {"A", "B"},
	OpSYRK: {"A", "C"},
}

func checkOperands(kind OpKind, ops []Operand, want int) error {
	if len(ops) != want {
		return opErr(kind, "", ErrOperand, "takes %d operands, got %d", want, len(ops))
	}
	for i, o := range ops {
		if !o.valid() {
			return opErr(kind, operandNames[kind][i], ErrOperand, "nil or empty")
		}
		if (o.F32 != nil) != (ops[0].F32 != nil) || o.DT != ops[0].DT {
			return opErr(kind, operandNames[kind][i], ErrDType, "mismatched element type")
		}
	}
	return nil
}

// gemmModes holds the four static GEMM mode strings so the warm path
// never allocates building one.
var gemmModes = [2][2]string{{"NN", "NT"}, {"TN", "TT"}}

func gemmMode(ta, tb matrix.Trans) string {
	i, j := 0, 0
	if ta == matrix.Transpose {
		i = 1
	}
	if tb == matrix.Transpose {
		j = 1
	}
	return gemmModes[i][j]
}

// cmarCeiling computes the plan's predicted GFLOPS ceiling from its main
// kernel size: FMA throughput is capped by the smaller of the FP issue
// width and the memory-port-scaled CMAR (Eq. 2/3) — the paper's
// compute-to-memory-access bound on sustainable kernel throughput.
func cmarCeiling(tun core.Tuning, dt vec.DType, mc, nc int) float64 {
	prof := tun.Prof
	eb := dt.ElemBytes()
	fma := float64(prof.FPPorts(eb))
	if memBound := ktmpl.CMAR(dt, mc, nc) * float64(prof.MemPorts); memBound < fma {
		fma = memBound
	}
	return prof.FreqGHz * fma * float64(prof.Lanes(eb)) * 2
}

// gemmDims validates GEMM operand shapes and counts and returns the
// problem dimensions (m, n, k). Shared by the direct dispatch path and
// the chain planner, so both reject with identical taxonomy errors.
func gemmDims(op OpDesc, a, b, c Operand) (m, n, k int, err error) {
	m, n = c.rows(), c.cols()
	k = a.cols()
	if op.TransA == matrix.Transpose {
		k = a.rows()
	}
	oaR, oaC := a.rows(), a.cols()
	if op.TransA == matrix.Transpose {
		oaR, oaC = oaC, oaR
	}
	obR, obC := b.rows(), b.cols()
	if op.TransB == matrix.Transpose {
		obR, obC = obC, obR
	}
	if oaR != m || oaC != k {
		return 0, 0, 0, opErr(OpGEMM, "A", ErrShape, "op(A)=%dx%d, want %dx%d for C=%dx%d", oaR, oaC, m, k, m, n)
	}
	if obR != k || obC != n {
		return 0, 0, 0, opErr(OpGEMM, "B", ErrShape, "op(B)=%dx%d, want %dx%d for C=%dx%d", obR, obC, k, n, m, n)
	}
	if a.count() != c.count() {
		return 0, 0, 0, opErr(OpGEMM, "A", ErrCount, "A has %d, C has %d", a.count(), c.count())
	}
	if b.count() != c.count() {
		return 0, 0, 0, opErr(OpGEMM, "B", ErrCount, "B has %d, C has %d", b.count(), c.count())
	}
	return m, n, k, nil
}

func (e *Engine) runGEMM(op OpDesc, sp *obs.Span, a, b, c Operand) error {
	m, n, k, err := gemmDims(op, a, b, c)
	if err != nil {
		return err
	}
	key := planKey{kind: OpGEMM, dt: a.DT, m: m, n: n, k: k,
		transA: op.TransA, transB: op.TransB, countBucket: countBucket(c.count())}
	var t0 time.Time
	if sp != nil {
		sp.DType = a.DT.String()
		sp.Mode = gemmMode(op.TransA, op.TransB)
		sp.M, sp.N, sp.K, sp.Count = m, n, k, c.count()
		sp.Workers = sched.Resolve(op.Workers)
		t0 = time.Now()
	}
	pv, outcome, err := e.plan(key, func() (any, error) {
		return core.NewGEMMPlan(core.GEMMProblem{
			DT: key.dt, M: m, N: n, K: k, TransA: op.TransA, TransB: op.TransB,
			Alpha: 1, Beta: 1, Count: key.countBucket,
		}, e.tun)
	})
	sp.Mark(obs.PhasePlan, t0)
	if err != nil {
		return err
	}
	pl := *pv.(*core.GEMMPlan)
	pl.P.Alpha, pl.P.Beta, pl.P.Count = op.Alpha, op.Beta, c.count()
	pl.RT = e.rt
	if labels := e.profileLabels("GEMM", key.dt, m, n, k); labels != nil {
		pl.Labels = labels
		pprof.SetGoroutineLabels(labels)
		defer pprof.SetGoroutineLabels(context.Background())
	}
	series := e.obs.Series(obs.ShapeKey{Op: "GEMM", DType: a.DT.String(),
		Mode: gemmMode(op.TransA, op.TransB), M: m, N: n, K: k})
	series.Plan(outcome)
	series.SetWorkers(sched.Resolve(op.Workers))
	if outcome == obs.CacheMiss || outcome == obs.CacheHydrated {
		series.SetPlan(cmarCeiling(e.tun, key.dt, pl.MTiles[0], pl.NTiles[0]),
			gemmPackDesc(pl.PackA, pl.PackB), pl.GroupsPerBatch)
	}
	if fn := e.obs.TraceSink(); fn != nil {
		fn(gemmTrace(op, &pl, c.groups(), outcome))
	}
	start := time.Now()
	if a.F32 != nil {
		err = execGEMM(e, key, &pl, a.F32, b.F32, c.F32, op.Workers, series, sp)
	} else {
		err = execGEMM(e, key, &pl, a.F64, b.F64, c.F64, op.Workers, series, sp)
	}
	series.Record(time.Since(start), pl.P.FLOPs(), err != nil)
	return err
}

// gemmPackDesc names the GEMM packing decision for the per-shape series.
func gemmPackDesc(packA, packB bool) string {
	switch {
	case packA && packB:
		return "A+B"
	case packA:
		return "A"
	case packB:
		return "B"
	}
	return "none"
}

// execGEMM resolves prepacked images for opted-in operands and runs the
// native executor. References on cache entries are held across the
// kernel loop and dropped after it, so invalidation or eviction during
// the call cannot free storage the kernels are reading.
func execGEMM[E vec.Float](e *Engine, key planKey, pl *core.GEMMPlan, a, b, c *layout.Compact[E], workers int, series *obs.Series, sp *obs.Span) error {
	var preA, preB []E
	var entA, entB *packEntry
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	if pl.PackA {
		if id, gen := a.PrepackState(); id != 0 {
			k := packKey{id: id, gen: gen, plan: key, role: roleA}
			ent, data, ok, err := lookupPacked[E](e, k)
			if err != nil {
				return err
			}
			if !ok {
				ent, data, err = buildPacked(e, k, pl.PrepackALen(a.Groups()), func(dst []E) error {
					return core.PrepackGEMMA(pl, a, dst)
				})
				if err != nil {
					return err
				}
			}
			preA, entA = data, ent
			series.Prepack(ok)
			sp.Prepack(ok)
		}
	}
	if pl.PackB {
		if id, gen := b.PrepackState(); id != 0 {
			k := packKey{id: id, gen: gen, plan: key, role: roleB}
			ent, data, ok, err := lookupPacked[E](e, k)
			if err == nil && !ok {
				ent, data, err = buildPacked(e, k, pl.PrepackBLen(b.Groups()), func(dst []E) error {
					return core.PrepackGEMMB(pl, b, dst)
				})
			}
			if err != nil {
				if entA != nil {
					e.packs.release(entA)
				}
				return err
			}
			preB, entB = data, ent
			series.Prepack(ok)
			sp.Prepack(ok)
		}
	}
	if sp != nil {
		sp.Mark(obs.PhasePack, t0)
		t0 = time.Now()
	}
	err := core.ExecGEMMNativePrepacked(pl, a, b, c, preA, preB, workers)
	sp.Mark(obs.PhaseCompute, t0)
	if entA != nil {
		e.packs.release(entA)
	}
	if entB != nil {
		e.packs.release(entB)
	}
	// The call wrote C: retire any packed images of its previous contents
	// (no-op unless C opted into reuse).
	c.Invalidate()
	return err
}

// triDims validates TRSM/TRMM operand shapes and counts and returns B's
// dimensions (m, n). Shared by the direct dispatch path and the chain
// planner.
func triDims(op OpDesc, a, b Operand) (m, n int, err error) {
	m, n = b.rows(), b.cols()
	if a.rows() != a.cols() {
		return 0, 0, opErr(op.Kind, "A", ErrShape, "A must be square, got %dx%d", a.rows(), a.cols())
	}
	dim := m
	if op.Side == matrix.Right {
		dim = n
	}
	if a.rows() != dim {
		return 0, 0, opErr(op.Kind, "A", ErrShape, "A is %dx%d but side %s of a %dx%d B requires %dx%d",
			a.rows(), a.cols(), op.Side, m, n, dim, dim)
	}
	if a.count() != b.count() {
		return 0, 0, opErr(op.Kind, "A", ErrCount, "A has %d, B has %d", a.count(), b.count())
	}
	return m, n, nil
}

func (e *Engine) runTri(op OpDesc, sp *obs.Span, a, b Operand) error {
	m, n, err := triDims(op, a, b)
	if err != nil {
		return err
	}
	key := planKey{kind: op.Kind, dt: a.DT, m: m, n: n,
		transA: op.TransA, side: op.Side, uplo: op.Uplo, diag: op.Diag,
		countBucket: countBucket(b.count())}
	shape := obs.ShapeKey{Op: op.Kind.String(), DType: a.DT.String(),
		Mode: op.Side.String() + op.TransA.String() + op.Uplo.String() + op.Diag.String(), M: m, N: n}
	var t0 time.Time
	if sp != nil {
		sp.DType = a.DT.String()
		sp.Mode = shape.Mode
		sp.M, sp.N, sp.Count = m, n, b.count()
		sp.Workers = sched.Resolve(op.Workers)
		t0 = time.Now()
	}
	if op.Kind == OpTRSM {
		pv, outcome, err := e.plan(key, func() (any, error) {
			return core.NewTRSMPlan(core.TRSMProblem{
				DT: key.dt, M: m, N: n, Side: op.Side, Uplo: op.Uplo,
				TransA: op.TransA, Diag: op.Diag, Alpha: 1, Count: key.countBucket,
			}, e.tun)
		})
		sp.Mark(obs.PhasePlan, t0)
		if err != nil {
			return err
		}
		pl := *pv.(*core.TRSMPlan)
		pl.P.Alpha, pl.P.Count = op.Alpha, b.count()
		pl.RT = e.rt
		if labels := e.profileLabels(op.Kind.String(), key.dt, m, n, 0); labels != nil {
			pl.Labels = labels
			pprof.SetGoroutineLabels(labels)
			defer pprof.SetGoroutineLabels(context.Background())
		}
		series := e.obs.Series(shape)
		series.Plan(outcome)
		series.SetWorkers(sched.Resolve(op.Workers))
		if outcome == obs.CacheMiss || outcome == obs.CacheHydrated {
			series.SetPlan(cmarCeiling(e.tun, key.dt, pl.Panels[0], pl.ColTiles[0]), triPackDesc(pl.PackB), pl.GroupsPerBatch)
		}
		if fn := e.obs.TraceSink(); fn != nil {
			fn(trsmTrace(op, &pl, b.groups(), outcome))
		}
		start := time.Now()
		if a.F32 != nil {
			err = execTRSM(e, key, &pl, a.F32, b.F32, op.Workers, series, sp)
		} else {
			err = execTRSM(e, key, &pl, a.F64, b.F64, op.Workers, series, sp)
		}
		series.Record(time.Since(start), pl.P.FLOPs(), err != nil)
		return err
	}
	pv, outcome, err := e.plan(key, func() (any, error) {
		return core.NewTRMMPlan(core.TRMMProblem{
			DT: key.dt, M: m, N: n, Side: op.Side, Uplo: op.Uplo,
			TransA: op.TransA, Diag: op.Diag, Alpha: 1, Count: key.countBucket,
		}, e.tun)
	})
	sp.Mark(obs.PhasePlan, t0)
	if err != nil {
		return err
	}
	pl := *pv.(*core.TRMMPlan)
	pl.P.Alpha, pl.P.Count = op.Alpha, b.count()
	pl.RT = e.rt
	if labels := e.profileLabels(op.Kind.String(), key.dt, m, n, 0); labels != nil {
		pl.Labels = labels
		pprof.SetGoroutineLabels(labels)
		defer pprof.SetGoroutineLabels(context.Background())
	}
	series := e.obs.Series(shape)
	series.Plan(outcome)
	series.SetWorkers(sched.Resolve(op.Workers))
	if outcome == obs.CacheMiss || outcome == obs.CacheHydrated {
		series.SetPlan(cmarCeiling(e.tun, key.dt, pl.Panels[0], pl.ColTiles[0]), triPackDesc(pl.PackB), pl.GroupsPerBatch)
	}
	if fn := e.obs.TraceSink(); fn != nil {
		fn(trmmTrace(op, &pl, b.groups(), outcome))
	}
	start := time.Now()
	if a.F32 != nil {
		err = execTRMM(e, key, &pl, a.F32, b.F32, op.Workers, series, sp)
	} else {
		err = execTRMM(e, key, &pl, a.F64, b.F64, op.Workers, series, sp)
	}
	series.Record(time.Since(start), pl.P.FLOPs(), err != nil)
	return err
}

// execTRSM resolves a prepacked triangle for an opted-in A and runs the
// native executor; see execGEMM for the reference discipline.
func execTRSM[E vec.Float](e *Engine, key planKey, pl *core.TRSMPlan, a, b *layout.Compact[E], workers int, series *obs.Series, sp *obs.Span) error {
	var preTri []E
	var ent *packEntry
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	if id, gen := a.PrepackState(); id != 0 {
		k := packKey{id: id, gen: gen, plan: key, role: roleTri}
		var ok bool
		var err error
		ent, preTri, ok, err = lookupPacked[E](e, k)
		if err == nil && !ok {
			ent, preTri, err = buildPacked(e, k, pl.PrepackTriLen(a.Groups()), func(dst []E) error {
				return core.PrepackTRSMTri(pl, a, dst)
			})
		}
		if err != nil {
			return err
		}
		series.Prepack(ok)
		sp.Prepack(ok)
	}
	if sp != nil {
		sp.Mark(obs.PhasePack, t0)
		t0 = time.Now()
	}
	err := core.ExecTRSMNativePrepacked(pl, a, b, preTri, workers)
	sp.Mark(obs.PhaseCompute, t0)
	if ent != nil {
		e.packs.release(ent)
	}
	b.Invalidate() // the call wrote B
	return err
}

// execTRMM is execTRSM for TRMM (true-diagonal triangle image).
func execTRMM[E vec.Float](e *Engine, key planKey, pl *core.TRMMPlan, a, b *layout.Compact[E], workers int, series *obs.Series, sp *obs.Span) error {
	var preTri []E
	var ent *packEntry
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	if id, gen := a.PrepackState(); id != 0 {
		k := packKey{id: id, gen: gen, plan: key, role: roleTri}
		var ok bool
		var err error
		ent, preTri, ok, err = lookupPacked[E](e, k)
		if err == nil && !ok {
			ent, preTri, err = buildPacked(e, k, pl.PrepackTriLen(a.Groups()), func(dst []E) error {
				return core.PrepackTRMMTri(pl, a, dst)
			})
		}
		if err != nil {
			return err
		}
		series.Prepack(ok)
		sp.Prepack(ok)
	}
	if sp != nil {
		sp.Mark(obs.PhasePack, t0)
		t0 = time.Now()
	}
	err := core.ExecTRMMNativePrepacked(pl, a, b, preTri, workers)
	sp.Mark(obs.PhaseCompute, t0)
	if ent != nil {
		e.packs.release(ent)
	}
	b.Invalidate() // the call wrote B
	return err
}

// triPackDesc names the triangular routines' packing decision: the
// triangle is always packed; B joins it only in non-canonical modes.
func triPackDesc(packB bool) string {
	if packB {
		return "tri+B"
	}
	return "tri"
}

// syrkDims validates SYRK operand shapes and counts and returns the
// problem dimensions (n, k). Shared by the direct dispatch path and the
// chain planner.
func syrkDims(op OpDesc, a, c Operand) (n, k int, err error) {
	n = c.rows()
	if c.rows() != c.cols() {
		return 0, 0, opErr(OpSYRK, "C", ErrShape, "C must be square, got %dx%d", c.rows(), c.cols())
	}
	k = a.cols()
	oaR := a.rows()
	if op.TransA == matrix.Transpose {
		k, oaR = a.rows(), a.cols()
	}
	if oaR != n {
		return 0, 0, opErr(OpSYRK, "A", ErrShape, "op(A)=%dx%d, want %dx%d for C=%dx%d", oaR, k, n, k, n, n)
	}
	if a.count() != c.count() {
		return 0, 0, opErr(OpSYRK, "A", ErrCount, "A has %d, C has %d", a.count(), c.count())
	}
	return n, k, nil
}

func (e *Engine) runSYRK(op OpDesc, sp *obs.Span, a, c Operand) error {
	n, k, err := syrkDims(op, a, c)
	if err != nil {
		return err
	}
	key := planKey{kind: OpSYRK, dt: a.DT, m: n, k: k,
		transA: op.TransA, uplo: op.Uplo, countBucket: countBucket(c.count())}
	var t0 time.Time
	if sp != nil {
		sp.DType = a.DT.String()
		sp.Mode = op.TransA.String() + op.Uplo.String()
		sp.M, sp.N, sp.K, sp.Count = n, n, k, c.count()
		sp.Workers = sched.Resolve(op.Workers)
		t0 = time.Now()
	}
	pv, outcome, err := e.plan(key, func() (any, error) {
		return core.NewSYRKPlan(core.SYRKProblem{
			DT: key.dt, N: key.m, K: k, Uplo: op.Uplo, Trans: op.TransA,
			Alpha: 1, Beta: 1, Count: key.countBucket,
		}, e.tun)
	})
	sp.Mark(obs.PhasePlan, t0)
	if err != nil {
		return err
	}
	pl := *pv.(*core.SYRKPlan)
	pl.P.Alpha, pl.P.Beta, pl.P.Count = op.Alpha, op.Beta, c.count()
	pl.RT = e.rt
	if labels := e.profileLabels("SYRK", key.dt, n, n, k); labels != nil {
		pl.Labels = labels
		pprof.SetGoroutineLabels(labels)
		defer pprof.SetGoroutineLabels(context.Background())
	}
	series := e.obs.Series(obs.ShapeKey{Op: "SYRK", DType: a.DT.String(),
		Mode: op.TransA.String() + op.Uplo.String(), M: n, N: n, K: k})
	series.Plan(outcome)
	series.SetWorkers(sched.Resolve(op.Workers))
	if outcome == obs.CacheMiss || outcome == obs.CacheHydrated {
		series.SetPlan(cmarCeiling(e.tun, key.dt, pl.Tiles[0], pl.Tiles[0]), "A+Aᵀ", pl.GroupsPerBatch)
	}
	if fn := e.obs.TraceSink(); fn != nil {
		fn(syrkTrace(op, &pl, c.groups(), outcome))
	}
	start := time.Now()
	if a.F32 != nil {
		err = core.ExecSYRKNativeParallel(&pl, a.F32, c.F32, op.Workers)
		c.F32.Invalidate() // the call wrote C
	} else {
		err = core.ExecSYRKNativeParallel(&pl, a.F64, c.F64, op.Workers)
		c.F64.Invalidate()
	}
	sp.Mark(obs.PhaseCompute, start)
	series.Record(time.Since(start), pl.P.FLOPs(), err != nil)
	return err
}

// Resolve re-exports the workers convention for API documentation and the
// info tool: workers <= 0 means auto (GOMAXPROCS).
func Resolve(workers int) int { return sched.Resolve(workers) }
