package engine

import (
	"bytes"
	"context"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"

	"iatf/internal/core"
	"iatf/internal/obs"
)

// TestSpanSyncLifecycle: a synchronous Run with an engine sink yields
// one span whose descriptor matches the problem and whose plan, pack and
// compute phases are populated and bounded by the end-to-end duration.
func TestSpanSyncLifecycle(t *testing.T) {
	e := New(core.DefaultTuning())
	var mu sync.Mutex
	var got []obs.Span
	e.obs.SetSpanSink(func(sp *obs.Span) {
		mu.Lock()
		got = append(got, *sp)
		mu.Unlock()
	})
	rng := rand.New(rand.NewSource(90))
	a, b, c := gemmReqOperands(rng, 16, 6, 5, 7)
	a.EnablePrepack()

	for i := 0; i < 2; i++ {
		if err := e.Run(asyncGEMMDesc, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 {
		t.Fatalf("sink received %d spans, want 2", len(got))
	}
	sp := got[0]
	if sp.Op != "GEMM" || sp.DType != "s" || sp.Mode != "NN" ||
		sp.M != 6 || sp.N != 5 || sp.K != 7 || sp.Count != 16 {
		t.Fatalf("span descriptor = %+v", sp)
	}
	if sp.Workers != 1 || sp.Fused != 0 || sp.ParentID != 0 {
		t.Fatalf("sync span workers/fused/parent = %d/%d/%d", sp.Workers, sp.Fused, sp.ParentID)
	}
	if sp.Phases[obs.PhasePlan] <= 0 || sp.Phases[obs.PhaseCompute] <= 0 {
		t.Fatalf("plan/compute phases not recorded: %v", sp.Phases)
	}
	if sp.Phases[obs.PhaseQueueWait] != 0 || sp.Phases[obs.PhaseFuse] != 0 ||
		sp.Phases[obs.PhaseScatter] != 0 {
		t.Fatalf("sync span has async-only phases: %v", sp.Phases)
	}
	if sp.PhaseTotal() > sp.Duration() {
		t.Fatalf("phase total %v exceeds duration %v", sp.PhaseTotal(), sp.Duration())
	}
	// First call builds A's packed image, second hits it.
	if sp.PrepackBuilds != 1 || sp.PrepackHits != 0 {
		t.Fatalf("cold span prepack = %d hit / %d built, want 0/1", sp.PrepackHits, sp.PrepackBuilds)
	}
	if warm := got[1]; warm.PrepackHits != 1 || warm.PrepackBuilds != 0 {
		t.Fatalf("warm span prepack = %d hit / %d built, want 1/0", warm.PrepackHits, warm.PrepackBuilds)
	}
	if got[1].ID <= got[0].ID {
		t.Fatalf("span IDs not increasing: %d then %d", got[0].ID, got[1].ID)
	}
}

// TestSpanSyncError: a failed request still produces a finished span
// carrying the error.
func TestSpanSyncError(t *testing.T) {
	e := New(core.DefaultTuning())
	var got []obs.Span
	e.obs.SetSpanSink(func(sp *obs.Span) { got = append(got, *sp) })
	rng := rand.New(rand.NewSource(91))
	a, b, _ := gemmReqOperands(rng, 8, 4, 4, 4)
	mismatched := randCompact(rng, 8, 5, 5) // wrong C shape

	if err := e.Run(asyncGEMMDesc, op32(a), op32(b), op32(mismatched)); err == nil {
		t.Fatal("mismatched GEMM did not fail")
	}
	if len(got) != 1 || got[0].Error == "" {
		t.Fatalf("error span not delivered: %+v", got)
	}
}

// TestSpanPerRequestSink: RunSpanned forces a span for one call even
// with no engine-level sink installed, and removing nothing afterwards
// keeps the disabled fast path (StartSpan returns nil).
func TestSpanPerRequestSink(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(92))
	a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)

	var got obs.Span
	err := e.RunSpanned(asyncGEMMDesc, func(sp *obs.Span) { got = *sp }, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != "GEMM" || got.Phases[obs.PhaseCompute] <= 0 {
		t.Fatalf("forced span = %+v", got)
	}
	if e.obs.SpansEnabled() {
		t.Fatal("per-request sink left the engine sink enabled")
	}
}

// TestAsyncSpanFusedParentChildren: a coalesced dispatch of N same-
// problem requests yields one parent span with Fused = N plus N child
// spans linked via ParentID, each carrying its own queue wait and the
// dispatch's shared fuse/plan/pack/compute/scatter phases — and the
// recorded phases account for (almost all of) each child's E2E latency.
func TestAsyncSpanFusedParentChildren(t *testing.T) {
	e := New(core.DefaultTuning())
	var mu sync.Mutex
	var all []obs.Span
	e.obs.SetSpanSink(func(sp *obs.Span) {
		mu.Lock()
		all = append(all, *sp)
		mu.Unlock()
	})
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(93))
	ctx := context.Background()

	// Occupy the dispatcher so the riders below coalesce.
	a0, b0, c0 := gemmReqOperands(rng, 8, 4, 4, 4)
	f0, err := e.Submit(ctx, asyncGEMMDesc, op32(a0), op32(b0), op32(c0))
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	const N = 4
	const count, m, n, k = 10, 6, 5, 7
	var futs [N]*Future
	for i := 0; i < N; i++ {
		a, b, c := gemmReqOperands(rng, count, m, n, k)
		if futs[i], err = e.Submit(ctx, asyncGEMMDesc, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		if err := futs[i].Err(); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	var parent *obs.Span
	var children []obs.Span
	for i := range all {
		switch {
		case all[i].Fused == N:
			parent = &all[i]
		case all[i].ParentID != 0:
			children = append(children, all[i])
		}
	}
	if parent == nil {
		t.Fatalf("no parent span with Fused=%d among %d spans", N, len(all))
	}
	if len(children) != N {
		t.Fatalf("child spans = %d, want %d", len(children), N)
	}
	// The fused batch pads each rider's count to its interleave-group
	// boundary, so the parent covers at least the sum of the riders.
	if parent.Count < N*count || parent.M != m || parent.N != n || parent.K != k {
		t.Fatalf("parent descriptor = %+v", parent)
	}
	if parent.Phases[obs.PhaseFuse] <= 0 || parent.Phases[obs.PhaseCompute] <= 0 ||
		parent.Phases[obs.PhaseScatter] <= 0 {
		t.Fatalf("parent fuse/compute/scatter not recorded: %v", parent.Phases)
	}
	for i, ch := range children {
		if ch.ParentID != parent.ID {
			t.Fatalf("child %d parent = %d, want %d", i, ch.ParentID, parent.ID)
		}
		if ch.Count != count || ch.M != m || ch.Fused != 0 {
			t.Fatalf("child %d descriptor = %+v", i, ch)
		}
		if ch.Phases[obs.PhaseQueueWait] <= 0 {
			t.Fatalf("child %d has no queue wait: %v", i, ch.Phases)
		}
		for p := obs.PhaseFuse; p < obs.PhaseCount; p++ {
			if ch.Phases[p] != parent.Phases[p] {
				t.Fatalf("child %d phase %v = %v, parent has %v", i, p, ch.Phases[p], parent.Phases[p])
			}
		}
		// The phases must account for the child's E2E latency: whatever
		// is unattributed (submit bookkeeping, scheduling gaps) stays a
		// small absolute slice, far below the dispatcher-held queue wait.
		gap := ch.Duration() - ch.PhaseTotal()
		if gap < 0 || gap > ch.Duration()/2 {
			t.Fatalf("child %d phases %v cover too little of duration %v (gap %v)",
				i, ch.PhaseTotal(), ch.Duration(), gap)
		}
	}
}

// TestAsyncSpanQueueWaitStats: queued requests populate the queue-wait
// histogram and move the depth high-water mark; the inline fast path
// does not.
func TestAsyncSpanQueueWaitStats(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(94))
	ctx := context.Background()

	// Idle engine: inline execution, nothing queued.
	a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)
	fut, err := e.Submit(ctx, asyncGEMMDesc, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Err(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats().Queue; s.DepthHighWater != 0 || s.Wait.Count != 0 {
		t.Fatalf("inline submit touched queue stats: %+v", s)
	}

	entered, gate := holdDispatcher(e)
	f0s, err := e.Submit(ctx, asyncGEMMDesc, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	const queued = 3
	var futs [queued]*Future
	for i := 0; i < queued; i++ {
		qa, qb, qc := gemmReqOperands(rng, 8, 4, 4, 4)
		if futs[i], err = e.Submit(ctx, asyncGEMMDesc, op32(qa), op32(qb), op32(qc)); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	if err := f0s.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < queued; i++ {
		if err := futs[i].Err(); err != nil {
			t.Fatal(err)
		}
	}

	s := e.Stats().Queue
	// Pending depth counts the held request (drained into the
	// dispatcher's in-flight batch) alongside the queued riders.
	if s.DepthHighWater != queued+1 {
		t.Fatalf("depth high-water = %d, want %d", s.DepthHighWater, queued+1)
	}
	// The held first request and the three queued riders all waited.
	if s.Wait.Count != queued+1 {
		t.Fatalf("wait histogram count = %d, want %d", s.Wait.Count, queued+1)
	}
	if s.Wait.SumNs == 0 || s.Wait.P99 <= 0 {
		t.Fatalf("wait histogram empty: %+v", s.Wait)
	}
}

// TestAsyncSpanCancelled: a request cancelled in the queue still
// resolves its span, carrying the context error and its queue wait.
func TestAsyncSpanCancelled(t *testing.T) {
	e := New(core.DefaultTuning())
	var mu sync.Mutex
	var spans []obs.Span
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(95))

	a0, b0, c0 := gemmReqOperands(rng, 8, 4, 4, 4)
	f0, err := e.Submit(context.Background(), asyncGEMMDesc, op32(a0), op32(b0), op32(c0))
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)
	fut, err := e.SubmitSpanned(ctx, asyncGEMMDesc, func(sp *obs.Span) {
		mu.Lock()
		spans = append(spans, *sp)
		mu.Unlock()
	}, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(gate)
	_ = fut.Err()
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(spans) != 1 {
		t.Fatalf("cancelled request delivered %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if !strings.Contains(sp.Error, "cancel") {
		t.Fatalf("cancelled span error = %q", sp.Error)
	}
	if sp.Phases[obs.PhaseQueueWait] <= 0 || sp.Phases[obs.PhaseCompute] != 0 {
		t.Fatalf("cancelled span phases = %v, want queue wait only", sp.Phases)
	}
}

// TestOpenMetricsValidity: the exporter's output is structurally valid
// OpenMetrics — every sample belongs to a declared family, counter
// samples use the _total suffix, histogram buckets are cumulative, and
// the exposition ends with # EOF.
func TestOpenMetricsValidity(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(96))
	a, b, c := gemmReqOperands(rng, 16, 8, 8, 8)
	a.EnablePrepack()
	for i := 0; i < 3; i++ {
		if err := e.Run(asyncGEMMDesc, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}
	// Drive one queued batch so the wait histogram has samples.
	entered, gate := holdDispatcher(e)
	f0, err := e.Submit(context.Background(), asyncGEMMDesc, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	close(gate)
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n...%s", out[len(out)-40:])
	}

	types := map[string]string{} // family -> counter|gauge|histogram
	var bucketCum uint64
	var bucketFamily string
	for ln, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "# EOF" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: family %s declared twice", ln+1, name)
			}
			types[name] = kind
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		family, kind := "", ""
		for fam, k := range types {
			var suffixes []string
			switch k {
			case "counter":
				suffixes = []string{"_total"}
			case "histogram":
				suffixes = []string{"_bucket", "_sum", "_count"}
			default:
				suffixes = []string{""}
			}
			for _, suf := range suffixes {
				if name == fam+suf && len(fam) > len(family) {
					family, kind = fam, k
				}
			}
		}
		if family == "" {
			t.Fatalf("line %d: sample %q has no declared family", ln+1, name)
		}
		if kind == "histogram" && strings.HasSuffix(name, "_bucket") {
			if family != bucketFamily {
				bucketFamily, bucketCum = family, 0
			}
			fields := strings.Fields(line)
			v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("line %d: unparsable bucket value: %q", ln+1, line)
			}
			if v < bucketCum {
				t.Fatalf("line %d: histogram buckets not cumulative: %q after %d", ln+1, line, bucketCum)
			}
			bucketCum = v
		}
	}
	for _, fam := range []string{
		"iatf_build_info", "iatf_plan_cache_hits", "iatf_queue_submitted",
		"iatf_queue_depth_high_water", "iatf_queue_wait_seconds",
		"iatf_shape_calls", "iatf_shape_ceiling_gflops",
	} {
		if _, ok := types[fam]; !ok {
			t.Fatalf("family %s missing from exposition", fam)
		}
	}
	if !strings.Contains(out, `iatf_shape_calls_total{op="GEMM",dtype="s",mode="NN",shape="8x8x8"}`) {
		t.Fatal("per-shape labeled sample missing")
	}
}
