package engine

import (
	"errors"
	"fmt"
)

// The engine rejects malformed calls at the dispatch boundary with a
// typed taxonomy, so callers can branch with errors.Is and the message
// always names the op and the offending operand — instead of a
// context-free "core: shape mismatch" surfacing three layers down.
var (
	// ErrShape: an operand's dimensions are inconsistent with the op.
	ErrShape = errors.New("shape mismatch")
	// ErrCount: operand batch counts disagree.
	ErrCount = errors.New("batch count mismatch")
	// ErrDType: operand element types disagree.
	ErrDType = errors.New("dtype mismatch")
	// ErrOperand: an operand is missing, nil/empty, or the arity is wrong.
	ErrOperand = errors.New("invalid operand")
)

// opErr wraps a taxonomy sentinel with the op name, the offending operand
// (may be empty for op-level errors) and a formatted detail.
func opErr(kind OpKind, operand string, sentinel error, format string, args ...any) error {
	detail := fmt.Sprintf(format, args...)
	if operand == "" {
		return fmt.Errorf("iatf: %v: %w: %s", kind, sentinel, detail)
	}
	return fmt.Errorf("iatf: %v operand %s: %w: %s", kind, operand, sentinel, detail)
}
