package engine

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"

	"iatf/internal/core"
	"iatf/internal/layout"
	"iatf/internal/matrix"
)

// triDiagBoost makes a random square batch well conditioned for
// triangular solves by adding `boost` to every diagonal element.
func triDiagBoost(c *layout.Compact[float32], n int, boost float32) {
	for m := 0; m < c.Count; m++ {
		for i := 0; i < n; i++ {
			g, off := m/c.P(), m%c.P()
			base := g * c.GroupLen()
			idx := base + (i*n+i)*c.BlockLen() + off
			c.Data[idx] += boost
		}
	}
}

func chainTriOperands(rng *rand.Rand, count, n, cols int) (a, b *layout.Compact[float32]) {
	a = randCompact(rng, count, n, n)
	triDiagBoost(a, n, float32(n))
	b = randCompact(rng, count, n, cols)
	return a, b
}

// fusableChain builds the canonical fusable pair over a and b:
// TRMM(Left,Upper) then TRSM(Left,Upper) on the same B.
func fusableChain(a, b *layout.Compact[float32]) []ChainStage {
	trmm := OpDesc{Kind: OpTRMM, Side: matrix.Left, Uplo: matrix.Upper, Alpha: 1, Workers: 1}
	trsm := OpDesc{Kind: OpTRSM, Side: matrix.Left, Uplo: matrix.Upper, Alpha: 1, Workers: 1}
	return []ChainStage{
		{Op: trmm, Ops: [3]Operand{op32(a), op32(b)}, NOps: 2},
		{Op: trsm, Ops: [3]Operand{op32(a), op32(b)}, NOps: 2},
	}
}

// countdownCtx cancels itself after Err has been consulted n times —
// the harness for mid-chain cancellation: the chain's per-stage check
// passes for the first stages and fires partway through.
type countdownCtx struct {
	mu   sync.Mutex
	left int
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// TestChainCancelMidChain cancels between stage 0 and stage 1 of a
// fusable chain. The elided handoff means B is held in packed form when
// the cancellation fires, so this proves the abort path re-materializes
// B: afterwards B must equal exactly the serial prefix (stage 0 applied,
// stage 1 not).
func TestChainCancelMidChain(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(90))
	a, b := chainTriOperands(rng, 7, 8, 4)
	ref := b.Clone()
	// Serial prefix: only the TRMM.
	trmm := OpDesc{Kind: OpTRMM, Side: matrix.Left, Uplo: matrix.Upper, Alpha: 1, Workers: 1}
	if err := e.Run(trmm, op32(a), op32(ref)); err != nil {
		t.Fatal(err)
	}

	// One Err pass admits stage 0; the stage-1 check sees the cancel.
	err := e.RunChain(&countdownCtx{left: 1}, fusableChain(a, b))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var ce *ChainError
	if !errors.As(err, &ce) || ce.Stage != 1 {
		t.Fatalf("want ChainError at stage 1, got %v", err)
	}
	if !slices.Equal(b.Data, ref.Data) {
		t.Fatal("B was not re-materialized to the completed prefix")
	}
	// The engine stays healthy: the same chain runs to completion now.
	if err := e.RunChain(context.Background(), fusableChain(a, b)); err != nil {
		t.Fatal(err)
	}
}

// TestChainAsyncCoalesce holds the dispatcher, enqueues three identical
// chains, and verifies they fuse into one execution: two coalesced
// riders, correct results for every caller.
func TestChainAsyncCoalesce(t *testing.T) {
	e := New(core.DefaultTuning())
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(91))
	ctx := context.Background()

	// Decoy parks the dispatcher inside the hook.
	a0, b0 := chainTriOperands(rng, 7, 8, 4)
	f0, err := e.SubmitChain(ctx, fusableChain(a0, b0), nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	// Reference: one chain executed synchronously on a sibling engine.
	eRef := New(core.DefaultTuning())
	a, _ := chainTriOperands(rng, 7, 8, 4)
	bSeed := randCompact(rng, 7, 8, 4)
	ref := bSeed.Clone()
	if err := eRef.RunChain(ctx, fusableChain(a, ref)); err != nil {
		t.Fatal(err)
	}

	const riders = 3
	var futs []*Future
	var bs []*layout.Compact[float32]
	for i := 0; i < riders; i++ {
		b := bSeed.Clone()
		f, err := e.SubmitChain(ctx, fusableChain(a, b), nil)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
		bs = append(bs, b)
	}
	close(gate)
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if err := f.Err(); err != nil {
			t.Fatalf("rider %d: %v", i, err)
		}
		if !slices.Equal(bs[i].Data, ref.Data) {
			t.Fatalf("rider %d diverged from the serial chain", i)
		}
	}
	s := e.Stats()
	if s.Queue.Coalesced != riders-1 {
		t.Errorf("coalesced = %d, want %d", s.Queue.Coalesced, riders-1)
	}
	if s.Chain.Runs != 1+1 { // decoy + one fused execution
		t.Errorf("chain runs = %d, want 2 (decoy + fused)", s.Chain.Runs)
	}
}

// TestChainAsyncNoCrossCoalesce verifies chains never fuse with
// ordinary single-op requests sharing the drained batch, and that
// chains with different scalars split into separate executions.
func TestChainAsyncNoCrossCoalesce(t *testing.T) {
	e := New(core.DefaultTuning())
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(92))
	ctx := context.Background()

	a0, b0 := chainTriOperands(rng, 7, 8, 4)
	f0, err := e.SubmitChain(ctx, fusableChain(a0, b0), nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	// One chain, one plain GEMM over the same-shape operands, and one
	// chain with a different alpha: three distinct bundles.
	a, b := chainTriOperands(rng, 7, 8, 4)
	fChain, err := e.SubmitChain(ctx, fusableChain(a, b), nil)
	if err != nil {
		t.Fatal(err)
	}
	ga, gb, gc := gemmReqOperands(rng, 7, 8, 8, 8)
	fGEMM, err := e.Submit(ctx, asyncGEMMDesc, op32(ga), op32(gb), op32(gc))
	if err != nil {
		t.Fatal(err)
	}
	a2, b2 := chainTriOperands(rng, 7, 8, 4)
	alt := fusableChain(a2, b2)
	alt[0].Op.Alpha = 2
	fAlt, err := e.SubmitChain(ctx, alt, nil)
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	for _, f := range []*Future{f0, fChain, fGEMM, fAlt} {
		if err := f.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Stats(); s.Queue.Coalesced != 0 {
		t.Errorf("coalesced = %d, want 0 (nothing shares an identity)", s.Queue.Coalesced)
	}
}

// TestChainFactorNeverFuses: chains holding a factorization stage must
// execute individually even when identical — fusing would feed the
// factor the padding lanes of every part as real (singular) matrices.
func TestChainFactorNeverFuses(t *testing.T) {
	e := New(core.DefaultTuning())
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(93))
	ctx := context.Background()

	luChain := func() ([]ChainStage, *layout.Compact[float32]) {
		a := randCompact(rng, 7, 8, 8)
		triDiagBoost(a, 8, 8)
		b := randCompact(rng, 7, 8, 4)
		lu := OpDesc{Kind: OpLU, Workers: 1}
		lo := OpDesc{Kind: OpTRSM, Side: matrix.Left, Uplo: matrix.Lower, Diag: matrix.Unit, Alpha: 1, Workers: 1}
		up := OpDesc{Kind: OpTRSM, Side: matrix.Left, Uplo: matrix.Upper, Alpha: 1, Workers: 1}
		return []ChainStage{
			{Op: lu, Ops: [3]Operand{op32(a)}, NOps: 1},
			{Op: lo, Ops: [3]Operand{op32(a), op32(b)}, NOps: 2},
			{Op: up, Ops: [3]Operand{op32(a), op32(b)}, NOps: 2},
		}, b
	}

	st0, _ := luChain()
	f0, err := e.SubmitChain(ctx, st0, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	var futs []*Future
	for i := 0; i < 3; i++ {
		st, _ := luChain()
		f, err := e.SubmitChain(ctx, st, nil)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	close(gate)
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if err := f.Err(); err != nil {
			t.Fatalf("chain %d: %v", i, err)
		}
	}
	s := e.Stats()
	if s.Queue.Coalesced != 0 {
		t.Errorf("coalesced = %d, want 0 (factor chains run solo)", s.Queue.Coalesced)
	}
	if s.Chain.Runs != 4 {
		t.Errorf("chain runs = %d, want 4 individual executions", s.Chain.Runs)
	}
}

// TestChainQueueFull: a full queue rejects SubmitChain with
// ErrQueueFull, and the future-less error path leaves no goroutines or
// counters wedged.
func TestChainQueueFull(t *testing.T) {
	e := New(core.DefaultTuning())
	e.SetQueueCapacity(1)
	_, gate := holdDispatcher(e)
	defer close(gate)
	rng := rand.New(rand.NewSource(94))
	ctx := context.Background()

	a, b := chainTriOperands(rng, 7, 8, 4)
	// The held dispatcher never drains: first submit occupies the slot.
	if _, err := e.SubmitChain(ctx, fusableChain(a, b), nil); err != nil {
		t.Fatal(err)
	}
	a2, b2 := chainTriOperands(rng, 7, 8, 4)
	if _, err := e.SubmitChain(ctx, fusableChain(a2, b2), nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if got := e.Stats().Queue.Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
}

// TestChainSetRouting: one chain identity always lands on one shard,
// sync and async, and the routed counters agree.
func TestChainSetRouting(t *testing.T) {
	s := NewSet(core.DefaultTuning(), 2)
	rng := rand.New(rand.NewSource(95))
	a, b := chainTriOperands(rng, 7, 8, 4)
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		if err := s.RunChain(ctx, fusableChain(a, b)); err != nil {
			t.Fatal(err)
		}
	}
	var runs, shards int
	for i := 0; i < s.Shards(); i++ {
		if r := int(s.Shard(i).Stats().Chain.Runs); r > 0 {
			runs += r
			shards++
		}
	}
	if runs != 4 || shards != 1 {
		t.Fatalf("runs=%d on %d shards, want all 4 on one shard", runs, shards)
	}
	fut, err := s.SubmitChain(ctx, fusableChain(a, b), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Err(); err != nil {
		t.Fatal(err)
	}
}
