package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"iatf/internal/core"
	"iatf/internal/layout"
	"iatf/internal/obs"
)

// holdDispatcher wires a test hook that parks the dispatcher goroutine
// after it drains a batch: `entered` reports each drained batch size,
// and the dispatcher blocks until `gate` is closed. With the busy flag
// forced on, every Submit enqueues (no idle fast path), which makes
// queue-full, cancellation and coalescing deterministic.
func holdDispatcher(e *Engine) (entered chan int, gate chan struct{}) {
	entered = make(chan int, 64)
	gate = make(chan struct{})
	e.queue.testHook = func(n int) {
		entered <- n
		<-gate
	}
	e.queue.busy.Store(true)
	return entered, gate
}

func gemmReqOperands(rng *rand.Rand, count, m, n, k int) (a, b, c *layout.Compact[float32]) {
	return randCompact(rng, count, m, k), randCompact(rng, count, k, n), randCompact(rng, count, m, n)
}

var asyncGEMMDesc = OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 1, Workers: 1}

// TestAsyncIdleFastPath: with nothing queued, Submit executes on the
// caller and the future resolves before Submit returns.
func TestAsyncIdleFastPath(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(50))
	a, b, c := gemmReqOperands(rng, 12, 4, 4, 4)

	fut, err := e.Submit(context.Background(), asyncGEMMDesc, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-fut.Done():
	default:
		t.Fatal("idle submission did not resolve synchronously")
	}
	if err := fut.Err(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Queue.Inline != 1 || s.Queue.Submitted != 1 {
		t.Fatalf("inline=%d submitted=%d, want 1/1", s.Queue.Inline, s.Queue.Submitted)
	}
}

// TestAsyncQueueFullBackpressure: with the dispatcher held and the
// bounded queue filled, the next Submit is rejected with ErrQueueFull.
func TestAsyncQueueFullBackpressure(t *testing.T) {
	e := New(core.DefaultTuning())
	e.SetQueueCapacity(2)
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(51))
	ctx := context.Background()

	submit := func() (*Future, error) {
		a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)
		return e.Submit(ctx, asyncGEMMDesc, op32(a), op32(b), op32(c))
	}

	// First request: dequeued by the dispatcher, which parks in the hook.
	f1, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	if n := <-entered; n != 1 {
		t.Fatalf("dispatcher drained %d, want 1", n)
	}
	// Fill the capacity-2 queue, then overflow it.
	f2, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	f3, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := submit(); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if got := e.Stats().Queue.Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}

	close(gate)
	for _, f := range []*Future{f1, f2, f3} {
		if err := f.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAsyncCancelBeforeDequeue: a request cancelled while it waits in
// the queue resolves with ctx.Err() and never executes.
func TestAsyncCancelBeforeDequeue(t *testing.T) {
	e := New(core.DefaultTuning())
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(52))

	// Occupy the dispatcher with a first request.
	a0, b0, c0 := gemmReqOperands(rng, 8, 4, 4, 4)
	f0, err := e.Submit(context.Background(), asyncGEMMDesc, op32(a0), op32(b0), op32(c0))
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	// Queue the victim, then cancel it while it waits.
	a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)
	before := append([]float32(nil), c.Data...)
	ctx, cancel := context.WithCancel(context.Background())
	fut, err := e.Submit(ctx, asyncGEMMDesc, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(gate)

	if err := fut.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request: err = %v, want context.Canceled", err)
	}
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}
	<-entered // the victim's (cancelled-only) batch was drained
	for i := range c.Data {
		if c.Data[i] != before[i] {
			t.Fatalf("cancelled request executed: C[%d] changed", i)
		}
	}
	if got := e.Stats().Queue.Cancelled; got != 1 {
		t.Fatalf("cancelled = %d, want 1", got)
	}
}

// TestAsyncCancelAfterDequeue: a request cancelled after the dispatcher
// drained it (but before its bundle executes) still resolves with
// ctx.Err() without executing.
func TestAsyncCancelAfterDequeue(t *testing.T) {
	e := New(core.DefaultTuning())
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(53))

	a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)
	before := append([]float32(nil), c.Data...)
	ctx, cancel := context.WithCancel(context.Background())
	fut, err := e.Submit(ctx, asyncGEMMDesc, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the request is out of the queue, held pre-execution
	cancel()
	close(gate)

	if err := fut.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request: err = %v, want context.Canceled", err)
	}
	for i := range c.Data {
		if c.Data[i] != before[i] {
			t.Fatalf("cancelled request executed: C[%d] changed", i)
		}
	}
}

// TestAsyncCancelledAtSubmit: a context already done is rejected before
// entering the queue.
func TestAsyncCancelledAtSubmit(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(54))
	a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Submit(ctx, asyncGEMMDesc, op32(a), op32(b), op32(c)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAsyncCoalescingParity holds the dispatcher, queues N same-shape
// GEMMs (and a TRSM straggler), releases them as ONE drained batch, and
// asserts (a) the GEMMs fused into a single dispatch, (b) every result
// is bit-identical to a serial direct Run on a fresh engine, and (c) the
// differently-shaped straggler ran separately and correctly.
func TestAsyncCoalescingParity(t *testing.T) {
	e := New(core.DefaultTuning())
	ref := New(core.DefaultTuning())
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(55))
	ctx := context.Background()

	// Occupy the dispatcher so everything below queues up behind it.
	a0, b0, c0 := gemmReqOperands(rng, 8, 4, 4, 4)
	f0, err := e.Submit(ctx, asyncGEMMDesc, op32(a0), op32(b0), op32(c0))
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	const N = 7
	const count, m, n, k = 13, 6, 5, 7 // count not a multiple of P: padded tail groups fuse too
	desc := OpDesc{Kind: OpGEMM, TransA: 0, TransB: 0, Alpha: complex(1.5, 0), Beta: complex(0.5, 0), Workers: 1}
	var futs [N]*Future
	var as, bs, cs, want [N]*layout.Compact[float32]
	for i := 0; i < N; i++ {
		as[i], bs[i], cs[i] = gemmReqOperands(rng, count, m, n, k)
		want[i] = cs[i].Clone()
		if err := ref.Run(desc, op32(as[i]), op32(bs[i]), op32(want[i])); err != nil {
			t.Fatal(err)
		}
		if futs[i], err = e.Submit(ctx, desc, op32(as[i]), op32(bs[i]), op32(cs[i])); err != nil {
			t.Fatal(err)
		}
	}
	// A same-batch TRSM must NOT fuse with the GEMMs.
	tri := randCompact(rng, count, m, m)
	for g := 0; g < tri.Groups(); g++ {
		for i := 0; i < m; i++ {
			for lane := 0; lane < tri.P(); lane++ {
				tri.Set(g*tri.P()+lane, i, i, 4, 0)
			}
		}
	}
	rhs := randCompact(rng, count, m, 3)
	wantRHS := rhs.Clone()
	trsmDesc := OpDesc{Kind: OpTRSM, Alpha: 1, Workers: 1}
	if err := ref.Run(trsmDesc, op32(tri), op32(wantRHS)); err != nil {
		t.Fatal(err)
	}
	ftrsm, err := e.Submit(ctx, trsmDesc, op32(tri), op32(rhs))
	if err != nil {
		t.Fatal(err)
	}

	close(gate)
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		if err := futs[i].Err(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ftrsm.Err(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < N; i++ {
		for j := range cs[i].Data {
			if cs[i].Data[j] != want[i].Data[j] {
				t.Fatalf("request %d diverges from serial direct call at element %d: %g != %g",
					i, j, cs[i].Data[j], want[i].Data[j])
			}
		}
	}
	for j := range rhs.Data {
		if rhs.Data[j] != wantRHS.Data[j] {
			t.Fatalf("TRSM straggler diverges at %d", j)
		}
	}

	s := e.Stats()
	if s.Queue.Coalesced != N-1 {
		t.Errorf("coalesced = %d, want %d", s.Queue.Coalesced, N-1)
	}
	if s.Queue.MaxFused != N {
		t.Errorf("max fused = %d, want %d", s.Queue.MaxFused, N)
	}
	// f0's dispatch + one fused GEMM dispatch + the TRSM straggler.
	if s.Queue.Dispatches != 3 {
		t.Errorf("dispatches = %d, want 3 (fused dispatches < submissions)", s.Queue.Dispatches)
	}
}

// TestAsyncCoalesceKeySeparatesScalars: same shape but different alpha
// must not fuse (scalars are applied uniformly to a fused dispatch).
func TestAsyncCoalesceKeySeparatesScalars(t *testing.T) {
	e := New(core.DefaultTuning())
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(56))
	ctx := context.Background()

	a0, b0, c0 := gemmReqOperands(rng, 8, 4, 4, 4)
	f0, err := e.Submit(ctx, asyncGEMMDesc, op32(a0), op32(b0), op32(c0))
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	descA := OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 1, Workers: 1}
	descB := OpDesc{Kind: OpGEMM, Alpha: 2, Beta: 1, Workers: 1}
	var futs []*Future
	for _, d := range []OpDesc{descA, descB, descA, descB} {
		a, b, c := gemmReqOperands(rng, 16, 4, 4, 4)
		f, err := e.Submit(ctx, d, op32(a), op32(b), op32(c))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	close(gate)
	for _, f := range futs {
		if err := f.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	// Two bundles of two: 2 coalesced riders, 3 dispatches total (f0 + 2).
	if s.Queue.Coalesced != 2 {
		t.Errorf("coalesced = %d, want 2 (alpha must split bundles)", s.Queue.Coalesced)
	}
}

// TestAsyncValidationErrorPropagates: a malformed fused request resolves
// every rider with the typed validation error.
func TestAsyncValidationError(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(57))
	a := randCompact(rng, 8, 4, 4)
	b := randCompact(rng, 8, 5, 4) // K mismatch
	c := randCompact(rng, 8, 4, 4)
	fut, err := e.Submit(context.Background(), asyncGEMMDesc, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Err(); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

// TestAsyncFutureWaitHonorsContext: Wait unblocks on its own context
// even while the request is still queued.
func TestAsyncFutureWaitHonorsContext(t *testing.T) {
	e := New(core.DefaultTuning())
	_, gate := holdDispatcher(e)
	defer close(gate)
	rng := rand.New(rand.NewSource(58))
	a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)
	fut, err := e.Submit(context.Background(), asyncGEMMDesc, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := fut.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want DeadlineExceeded", err)
	}
}

// TestAsyncFactorValidation: the factor dispatch path speaks the same
// taxonomy as the level-3 ops.
func TestAsyncFactorValidation(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(59))

	if _, err := e.RunFactor(OpDesc{Kind: OpLU}, Operand{}); !errors.Is(err, ErrOperand) {
		t.Errorf("nil operand: err = %v, want ErrOperand", err)
	}
	rect := randCompact(rng, 4, 3, 5)
	if _, err := e.RunFactor(OpDesc{Kind: OpLU}, op32(rect)); !errors.Is(err, ErrShape) {
		t.Errorf("non-square: err = %v, want ErrShape", err)
	}
	if _, _, err := e.RunLUPiv(OpDesc{Kind: OpLUPiv}, op32(rect)); !errors.Is(err, ErrShape) {
		t.Errorf("pivoted non-square: err = %v, want ErrShape", err)
	}
	if _, err := e.RunFactor(OpDesc{Kind: OpGEMM}, op32(rect)); !errors.Is(err, ErrOperand) {
		t.Errorf("non-factor kind: err = %v, want ErrOperand", err)
	}

	// A well-formed factor call moves the plan-cache and obs counters.
	// Boost the diagonals so the unpivoted LU is well-conditioned.
	sq := randCompact(rng, 6, 4, 4)
	for m := 0; m < sq.Count; m++ {
		for i := 0; i < 4; i++ {
			re, _ := sq.At(m, i, i)
			sq.Set(m, i, i, re+8, 0)
		}
	}
	before := e.Stats()
	if _, err := e.RunFactor(OpDesc{Kind: OpLU, Workers: 1}, op32(sq)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunFactor(OpDesc{Kind: OpLU, Workers: 1}, op32(sq)); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.PlanMisses != before.PlanMisses+1 || after.PlanHits != before.PlanHits+1 {
		t.Errorf("factor plan cache: misses %d->%d hits %d->%d, want +1/+1",
			before.PlanMisses, after.PlanMisses, before.PlanHits, after.PlanHits)
	}
	found := false
	for _, sh := range after.Shapes {
		if sh.Op == "LU" && sh.M == 4 && sh.Calls == 2 {
			found = true
		}
	}
	if !found {
		t.Error("factor calls missing from the per-shape series")
	}
}

// edfOrderTrial drains one held batch of four single-request bundles —
// submitted loose-deadline first, tight-deadline last, with two
// no-deadline bundles of different priority between them — and returns
// the order the dispatcher executed them in. Span sinks record the
// order: they run synchronously on the dispatcher goroutine as each
// bundle resolves. Results are checked bit-exact against a serial
// reference engine regardless of ordering mode.
func edfOrderTrial(t *testing.T, edf bool) []string {
	t.Helper()
	e := New(core.DefaultTuning())
	e.SetEDF(edf)
	ref := New(core.DefaultTuning())
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(90))
	ctx := context.Background()

	a0, b0, c0 := gemmReqOperands(rng, 8, 4, 4, 4)
	f0, err := e.Submit(ctx, asyncGEMMDesc, op32(a0), op32(b0), op32(c0))
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	var got []string
	subs := []struct {
		name string
		k    int // distinct inner dim: each submission is its own bundle
		dl   time.Duration
		prio int
	}{
		{"loose", 3, time.Minute, 0},
		{"hi", 5, 0, 5},
		{"lo", 6, 0, 0},
		{"tight", 7, 10 * time.Second, 0},
	}
	futs := make([]*Future, len(subs))
	cs := make([]*layout.Compact[float32], len(subs))
	want := make([]*layout.Compact[float32], len(subs))
	for i, s := range subs {
		a, b, c := gemmReqOperands(rng, 9, 4, 4, s.k)
		cs[i] = c
		want[i] = c.Clone()
		desc := OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 1, Workers: 1, Priority: s.prio}
		if err := ref.Run(desc, op32(a), op32(b), op32(want[i])); err != nil {
			t.Fatal(err)
		}
		sctx := ctx
		if s.dl > 0 {
			var cancel context.CancelFunc
			sctx, cancel = context.WithDeadline(ctx, time.Now().Add(s.dl))
			defer cancel()
		}
		name := s.name
		sink := obs.SpanFunc(func(sp *obs.Span) { got = append(got, name) })
		if futs[i], err = e.SubmitSpanned(sctx, desc, sink, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}

	close(gate)
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if err := f.Err(); err != nil {
			t.Fatalf("%s: %v", subs[i].name, err)
		}
	}
	for i := range subs {
		for j := range cs[i].Data {
			if cs[i].Data[j] != want[i].Data[j] {
				t.Fatalf("%s diverges from serial reference at element %d", subs[i].name, j)
			}
		}
	}
	return got
}

// TestAsyncEDFOrdering: within one drained batch, the tight-deadline
// bundle executes first even though it was submitted last; deadline-less
// bundles follow the deadline-carrying ones, higher priority class
// first. With EDF off the same traffic executes in arrival order.
func TestAsyncEDFOrdering(t *testing.T) {
	edfWant := []string{"tight", "loose", "hi", "lo"}
	if got := edfOrderTrial(t, true); !equalStrings(got, edfWant) {
		t.Fatalf("EDF order = %v, want %v", got, edfWant)
	}
	fifoWant := []string{"loose", "hi", "lo", "tight"}
	if got := edfOrderTrial(t, false); !equalStrings(got, fifoWant) {
		t.Fatalf("FIFO order = %v, want %v", got, fifoWant)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAsyncFuseTimeExpiry: a request whose context died after the
// dequeue check but before its bundle fuses must resolve with ctx.Err(),
// count as Cancelled, and leave the fused super-batch to the survivors —
// whose results stay bit-identical to a serial reference.
func TestAsyncFuseTimeExpiry(t *testing.T) {
	e := New(core.DefaultTuning())
	ref := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(91))

	const N = 5
	dead := map[int]bool{1: true, 3: true}
	reqs := make([]*asyncReq, N)
	cs := make([]*layout.Compact[float32], N)
	want := make([]*layout.Compact[float32], N)
	for i := 0; i < N; i++ {
		a, b, c := gemmReqOperands(rng, 13, 4, 4, 4)
		cs[i] = c
		want[i] = c.Clone() // survivors: overwritten by the reference run below
		if !dead[i] {
			if err := ref.Run(asyncGEMMDesc, op32(a), op32(b), op32(want[i])); err != nil {
				t.Fatal(err)
			}
		}
		rctx := context.Background()
		if dead[i] {
			cctx, cancel := context.WithCancel(rctx)
			cancel()
			rctx = cctx
		}
		r := &asyncReq{ctx: rctx, op: asyncGEMMDesc, fut: newFuture(), enq: time.Now(), nops: 3}
		r.ops[0], r.ops[1], r.ops[2] = op32(a), op32(b), op32(c)
		reqs[i] = r
	}

	// runBundle compacts its slice in place (survivors shift down), so it
	// gets a copy and the test keeps its own stable view.
	e.runBundle(append([]*asyncReq(nil), reqs...))

	for i := 0; i < N; i++ {
		err := reqs[i].fut.Err()
		if dead[i] {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("request %d: err = %v, want context.Canceled", i, err)
			}
		} else if err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
		// Dead requests keep their original contents; survivors must match
		// the serial reference bit for bit.
		for j := range cs[i].Data {
			if cs[i].Data[j] != want[i].Data[j] {
				t.Fatalf("request %d (dead=%v) diverges at element %d", i, dead[i], j)
			}
		}
	}
	s := e.Stats().Queue
	if s.Cancelled != 2 {
		t.Errorf("cancelled = %d, want 2", s.Cancelled)
	}
	if s.Dispatches != 1 {
		t.Errorf("dispatches = %d, want 1 (one fused dispatch of the survivors)", s.Dispatches)
	}
	if s.Coalesced != 2 {
		t.Errorf("coalesced = %d, want 2 (three survivors in one fused dispatch)", s.Coalesced)
	}
	if s.MaxFused != 3 {
		t.Errorf("max fused = %d, want 3 (dead requests must not consume slots)", s.MaxFused)
	}

	// An entirely dead bundle resolves every request without dispatching.
	r2 := make([]*asyncReq, 2)
	for i := range r2 {
		a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		r2[i] = &asyncReq{ctx: cctx, op: asyncGEMMDesc, fut: newFuture(), enq: time.Now(), nops: 3}
		r2[i].ops[0], r2[i].ops[1], r2[i].ops[2] = op32(a), op32(b), op32(c)
	}
	e.runBundle(append([]*asyncReq(nil), r2...))
	for i := range r2 {
		if err := r2[i].fut.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("all-dead bundle request %d: err = %v", i, err)
		}
	}
	s = e.Stats().Queue
	if s.Dispatches != 1 || s.Cancelled != 4 {
		t.Errorf("after all-dead bundle: dispatches=%d cancelled=%d, want 1/4", s.Dispatches, s.Cancelled)
	}
}

// TestAsyncWindowBatching: with a max-batch-window set, requests that
// arrive while the dispatcher holds the drain open land in the same
// batch and coalesce — the mechanism that makes the EDF pass effective
// for bursts. Verified through the fused/dispatch counters rather than
// timing: all N same-problem submissions ride one window.
func TestAsyncWindowBatching(t *testing.T) {
	e := New(core.DefaultTuning())
	e.SetBatchWindow(50 * time.Millisecond)
	rng := rand.New(rand.NewSource(92))
	ctx := context.Background()

	// Occupy the inline fast path briefly: first submission executes
	// inline, the rest queue while its window... no — inline path skips
	// the window. Force queue traffic by marking the queue busy, then
	// release it by submitting through the dispatcher.
	entered, gate := holdDispatcher(e)
	a0, b0, c0 := gemmReqOperands(rng, 8, 4, 4, 4)
	f0, err := e.Submit(ctx, asyncGEMMDesc, op32(a0), op32(b0), op32(c0))
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	const N = 6
	const count, m, n, k = 10, 5, 4, 6
	desc := OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 1, Workers: 1}
	futs := make([]*Future, N)
	// Submit half before releasing the dispatcher; the other half race
	// into the open window right after release.
	for i := 0; i < N/2; i++ {
		a, b, c := gemmReqOperands(rng, count, m, n, k)
		if futs[i], err = e.Submit(ctx, desc, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	for i := N / 2; i < N; i++ {
		a, b, c := gemmReqOperands(rng, count, m, n, k)
		if futs[i], err = e.Submit(ctx, desc, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < N; i++ {
		if err := futs[i].Err(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats().Queue
	// All N same-problem requests must have fused into very few
	// dispatches; with the 50ms window they almost always land in one,
	// but the assertion only requires that coalescing happened across
	// the release boundary (more than the pre-release half fused).
	if s.Coalesced < N/2 {
		t.Errorf("coalesced = %d, want >= %d (window must extend the batch)", s.Coalesced, N/2)
	}
	if got := s.Window; got != 50*time.Millisecond {
		t.Errorf("QueueStats.Window = %v, want 50ms", got)
	}
	if !s.EDF {
		t.Errorf("QueueStats.EDF = false, want true (default)")
	}
}
