// Chain dispatch: cross-op fusion via layout propagation. A chain is an
// ordered list of stages over shared compact operands — a Newton step's
// LU + two triangular solves, a block-Jacobi preconditioner's two
// Cholesky solves. Executing the stages as separate calls makes every
// stage scatter its written operand back to the interleaved user layout
// only for the next stage to re-canonicalize it: pure memory traffic
// with zero FLOPs.
//
// The chain planner removes that round trip where the layouts provably
// agree. It analyzes the stage list once (per chain identity, cached),
// finds producer→consumer edges on the written B operand of adjacent
// triangular stages, and marks the pairs whose canonical B images are
// bit-identical — both plans canonicalize (PackB) with equal ReverseB
// and TransposeB, so the producer's per-group nBUncopy and the
// consumer's nBCopy compose to the identity block permutation. For such
// a pair the producer leaves its result in canonical form
// (scatter elided) and the consumer starts from the donated image
// (pack elided); results are bit-exact versus the serial sequence
// because only an inverse permutation pair was removed.
//
// Ownership of a donated image is strict: the chain executor holds the
// buffer, and whenever the handoff is abandoned — a stage error, a
// singular factor, context cancellation — it re-materializes the image
// into B before returning, so the operand is left exactly as the serial
// sequence would have left it after the producer stage. While an image
// is live, B's storage is stale and nothing else may read it; the
// planner therefore only fuses pairs where the consumer directly
// follows the producer and reads that operand as its B.
//
// Beyond elision the chain plan carries two more replay wins: every
// stage's core plan is resolved once and cached under the chain key
// (replay skips per-stage validation and plan-cache rounds), and pure
// chain inputs — operands read by some stage and written by none — are
// auto-prepacked, so a chain-invariant triangle (block-Jacobi's
// Cholesky factor) packs once and every later iteration jumps straight
// to the kernels.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"iatf/internal/bufpool"
	"iatf/internal/core"
	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/obs"
	"iatf/internal/sched"
	"iatf/internal/vec"
)

// maxChainStages bounds a chain's length (a sanity bound, far above any
// real solver sequence).
const maxChainStages = 64

// chainCacheCap bounds the engine's chain-plan cache (FIFO eviction).
const chainCacheCap = 64

// ErrSingular is the sentinel inside a ChainError when a factorization
// stage reports a non-zero info code: the chain aborts at that stage
// (later stages would consume an unfinished factor).
var ErrSingular = errors.New("singular matrix")

// ChainStage is one op of a chain: the descriptor plus its operands in
// BLAS argument order (GEMM A,B,C — TRSM/TRMM A,B — SYRK A,C — LU/
// Cholesky A). Build stages through the public constructors; the engine
// validates shapes, dtypes and counts chain-wide.
type ChainStage struct {
	Op   OpDesc
	Ops  [3]Operand
	NOps int
}

// count returns the stage's batch count (operands of one chain share it
// post-validation).
func (s *ChainStage) count() int {
	for i := 0; i < s.NOps; i++ {
		if s.Ops[i].valid() {
			return s.Ops[i].count()
		}
	}
	return 0
}

// ChainError attributes a chain failure to the stage that caused it.
// Stage indexes the stage list; Info carries the per-matrix codes of a
// failed factorization stage (then Err is ErrSingular). Unwrap exposes
// the underlying error for errors.Is/As — including context
// cancellation and the validation taxonomy.
type ChainError struct {
	Stage int
	Kind  OpKind
	Info  []int
	Err   error
}

func (e *ChainError) Error() string {
	return fmt.Sprintf("iatf: chain stage %d (%v): %v", e.Stage, e.Kind, e.Err)
}

func (e *ChainError) Unwrap() error { return e.Err }

// chainArity returns the operand count of a chain-eligible op kind.
// OpLUPiv is excluded: its pivot record cannot ride the error-only
// chain surface.
func chainArity(k OpKind) (int, bool) {
	switch k {
	case OpGEMM:
		return 3, true
	case OpTRSM, OpTRMM, OpSYRK:
		return 2, true
	case OpLU, OpCholesky:
		return 1, true
	}
	return 0, false
}

// chainStageDesc is one stage's slice of the chain identity: everything
// plan geometry and fusion analysis depend on. Scalars, workers and
// priority are excluded (spliced at dispatch, like the plan cache); the
// batch count is bucketed once chain-wide. alias is the operand-sharing
// pattern: each distinct compact gets its first-appearance index, so
// "TRSM(A,B) then TRSM(A,B)" and "TRSM(A,B) then TRSM(C,B)" are
// different chains even with identical dims.
type chainStageDesc struct {
	kind           OpKind
	dt             vec.DType
	transA, transB matrix.Trans
	side           matrix.Side
	uplo           matrix.Uplo
	diag           matrix.Diag
	nops           int
	rows, cols     [3]int
	alias          [3]int8
}

// aliasRef locates one occurrence of an alias in the stage list.
type aliasRef struct {
	stage, slot int
}

// chainStagePlan is the cached per-stage execution state.
type chainStagePlan struct {
	key planKey
	pv  any // cached core plan; nil for factor stages

	// donated: this stage consumes its predecessor's canonical B image
	// (pack elided). elideOut: the successor consumes this stage's
	// result, so it stays canonical (scatter elided).
	donated  bool
	elideOut bool

	// autoPre marks operand slots that are pure chain inputs (read by
	// some stage, written by none) with a prepack-capable role: the
	// executor enables prepack on them so the packed image is built once
	// and replayed across chain iterations.
	autoPre [3]bool
}

// chainPlan is one cached chain analysis.
type chainPlan struct {
	hash   uint64
	desc   []chainStageDesc
	bucket int

	label    string // stage kinds joined: "LU+TRSM+TRSM" (series mode, span)
	fuseDesc string // packing descriptor for the series: "elide:N"

	stages       []chainStagePlan
	nAliases     int
	aliasFirst   []aliasRef
	aliasWritten []bool
	hasFactor    bool

	flopsPerMatrix float64
}

// chainDescEqual reports whether two chain identities match exactly —
// the collision-safe comparison behind the hashed cache lookup.
func chainDescEqual(a, b *chainPlan) bool {
	if a.bucket != b.bucket || len(a.desc) != len(b.desc) {
		return false
	}
	for i := range a.desc {
		if a.desc[i] != b.desc[i] {
			return false
		}
	}
	return true
}

// chainWrites returns the operand slot a stage writes.
func chainWrites(k OpKind) int {
	switch k {
	case OpGEMM:
		return 2
	case OpLU, OpCholesky:
		return 0
	}
	return 1 // TRSM/TRMM's B, SYRK's C
}

// stageFLOPs models one stage's per-matrix flop count for the chain
// series' GFLOPS estimate.
func stageFLOPs(d *chainStageDesc) float64 {
	switch d.kind {
	case OpGEMM:
		k := d.cols[0]
		if d.transA == matrix.Transpose {
			k = d.rows[0]
		}
		return 2 * float64(d.rows[2]) * float64(d.cols[2]) * float64(k)
	case OpTRSM, OpTRMM:
		dim := d.rows[1]
		if d.side == matrix.Right {
			dim = d.cols[1]
		}
		return float64(d.rows[1]) * float64(d.cols[1]) * float64(dim)
	case OpSYRK:
		k := d.cols[0]
		if d.transA == matrix.Transpose {
			k = d.rows[0]
		}
		return float64(d.rows[1]) * float64(d.cols[1]) * float64(k)
	}
	return factorFLOPs(d.kind, d.rows[0])
}

// triCanon extracts the canonical-B geometry of a cached triangular
// plan: whether B is canonicalized at all, and the block permutation
// that does it.
func triCanon(pv any) (packB, reverse, transpose bool) {
	switch pl := pv.(type) {
	case *core.TRSMPlan:
		return pl.PackB, pl.ReverseB, pl.TransposeB
	case *core.TRMMPlan:
		return pl.PackB, pl.ReverseB, pl.TransposeB
	}
	return false, false, false
}

// chainPlanFor resolves (building and caching on miss) the chain plan
// of a stage list. Validation errors are attributed to their stage via
// ChainError.
func (e *Engine) chainPlanFor(stages []ChainStage) (*chainPlan, obs.CacheOutcome, error) {
	if len(stages) == 0 {
		return nil, obs.CacheMiss, fmt.Errorf("iatf: chain: %w: no stages", ErrOperand)
	}
	if len(stages) > maxChainStages {
		return nil, obs.CacheMiss, fmt.Errorf("iatf: chain: %w: %d stages exceeds the %d-stage bound",
			ErrOperand, len(stages), maxChainStages)
	}
	cp := &chainPlan{desc: make([]chainStageDesc, len(stages))}
	aliases := make(map[any]int8)
	count := -1
	for i := range stages {
		st := &stages[i]
		kind := st.Op.Kind
		arity, ok := chainArity(kind)
		if !ok {
			return nil, obs.CacheMiss, &ChainError{Stage: i, Kind: kind,
				Err: opErr(kind, "", ErrOperand, "op kind not chainable")}
		}
		if st.NOps != arity {
			return nil, obs.CacheMiss, &ChainError{Stage: i, Kind: kind,
				Err: opErr(kind, "", ErrOperand, "takes %d operands, got %d", arity, st.NOps)}
		}
		var err error
		if kind == OpLU || kind == OpCholesky {
			err = checkFactor(kind, st.Ops[0])
		} else {
			err = checkOperands(kind, st.Ops[:st.NOps], arity)
		}
		if err == nil {
			switch kind {
			case OpGEMM:
				_, _, _, err = gemmDims(st.Op, st.Ops[0], st.Ops[1], st.Ops[2])
			case OpTRSM, OpTRMM:
				_, _, err = triDims(st.Op, st.Ops[0], st.Ops[1])
			case OpSYRK:
				_, _, err = syrkDims(st.Op, st.Ops[0], st.Ops[1])
			}
		}
		if err != nil {
			return nil, obs.CacheMiss, &ChainError{Stage: i, Kind: kind, Err: err}
		}
		d := &cp.desc[i]
		d.kind, d.dt = kind, st.Ops[0].DT
		d.transA, d.transB = st.Op.TransA, st.Op.TransB
		d.side, d.uplo, d.diag = st.Op.Side, st.Op.Uplo, st.Op.Diag
		d.nops = st.NOps
		if d.dt != stages[0].Ops[0].DT {
			return nil, obs.CacheMiss, &ChainError{Stage: i, Kind: kind,
				Err: opErr(kind, "", ErrDType, "stage dtype %s differs from chain dtype %s",
					d.dt, stages[0].Ops[0].DT)}
		}
		for s := 0; s < st.NOps; s++ {
			o := st.Ops[s]
			d.rows[s], d.cols[s] = o.rows(), o.cols()
			if count < 0 {
				count = o.count()
			} else if o.count() != count {
				return nil, obs.CacheMiss, &ChainError{Stage: i, Kind: kind,
					Err: opErr(kind, operandNames[kind][s], ErrCount,
						"has %d, chain has %d (chain stages share one batch count)", o.count(), count)}
			}
			var ptr any
			if o.F32 != nil {
				ptr = o.F32
			} else {
				ptr = o.F64
			}
			id, ok := aliases[ptr]
			if !ok {
				id = int8(len(aliases))
				aliases[ptr] = id
				cp.aliasFirst = append(cp.aliasFirst, aliasRef{stage: i, slot: s})
			}
			d.alias[s] = id
		}
	}
	cp.bucket = countBucket(count)
	cp.nAliases = len(aliases)

	h := uint64(0xcbf29ce484222325)
	h = mix64(h, uint64(len(cp.desc)))
	h = mix64(h, uint64(cp.bucket))
	for i := range cp.desc {
		d := &cp.desc[i]
		for _, v := range [...]int{int(d.kind), int(d.dt), int(d.transA), int(d.transB),
			int(d.side), int(d.uplo), int(d.diag), d.nops,
			d.rows[0], d.cols[0], d.rows[1], d.cols[1], d.rows[2], d.cols[2],
			int(d.alias[0]), int(d.alias[1]), int(d.alias[2])} {
			h = mix64(h, uint64(v))
		}
	}
	cp.hash = h

	e.chainMu.Lock()
	for _, cand := range e.chainPlans[h] {
		if chainDescEqual(cand, cp) {
			e.chainMu.Unlock()
			e.chainHits.Add(1)
			return cand, obs.CacheHit, nil
		}
	}
	e.chainMu.Unlock()
	e.chainMisses.Add(1)

	if err := e.buildChainPlan(cp, stages); err != nil {
		return nil, obs.CacheMiss, err
	}

	e.chainMu.Lock()
	// Re-check: a concurrent builder may have landed the same identity;
	// keep the first so callers can compare plans by pointer.
	for _, cand := range e.chainPlans[h] {
		if chainDescEqual(cand, cp) {
			e.chainMu.Unlock()
			return cand, obs.CacheMiss, nil
		}
	}
	for len(e.chainOrder) >= chainCacheCap {
		victim := e.chainOrder[0]
		e.chainOrder = e.chainOrder[1:]
		if bucket := e.chainPlans[victim]; len(bucket) > 0 {
			if len(bucket) == 1 {
				delete(e.chainPlans, victim)
			} else {
				e.chainPlans[victim] = bucket[1:]
			}
		}
	}
	e.chainPlans[h] = append(e.chainPlans[h], cp)
	e.chainOrder = append(e.chainOrder, h)
	e.chainMu.Unlock()
	return cp, obs.CacheMiss, nil
}

// buildChainPlan fills the analysis of a validated chain descriptor:
// per-stage core plans, the producer→consumer elision edges, write/read
// alias sets and the auto-prepack marks.
func (e *Engine) buildChainPlan(cp *chainPlan, stages []ChainStage) error {
	n := len(cp.desc)
	cp.stages = make([]chainStagePlan, n)
	cp.aliasWritten = make([]bool, cp.nAliases)
	kinds := make([]string, n)
	for i := range cp.desc {
		d := &cp.desc[i]
		kinds[i] = d.kind.String()
		cp.flopsPerMatrix += stageFLOPs(d)
		cp.aliasWritten[d.alias[chainWrites(d.kind)]] = true
		if d.kind == OpLU || d.kind == OpCholesky {
			cp.hasFactor = true
			continue
		}
		key, pv, err := e.stagePlan(&stages[i].Op, d, cp.bucket)
		if err != nil {
			return &ChainError{Stage: i, Kind: d.kind, Err: err}
		}
		cp.stages[i].key, cp.stages[i].pv = key, pv
	}
	cp.label = strings.Join(kinds, "+")

	// Producer→consumer elision edges: adjacent triangular stages over
	// the same B whose canonical images agree. The consumer must read
	// the shared operand only as its B (its A must be a different
	// compact), and neither stage may alias A with B.
	elided := 0
	for i := 0; i+1 < n; i++ {
		p, c := &cp.desc[i], &cp.desc[i+1]
		if (p.kind != OpTRSM && p.kind != OpTRMM) || (c.kind != OpTRSM && c.kind != OpTRMM) {
			continue
		}
		if p.alias[1] != c.alias[1] || p.alias[0] == p.alias[1] || c.alias[0] == c.alias[1] {
			continue
		}
		pPack, pRev, pTrans := triCanon(cp.stages[i].pv)
		cPack, cRev, cTrans := triCanon(cp.stages[i+1].pv)
		if !pPack || !cPack || pRev != cRev || pTrans != cTrans {
			continue
		}
		cp.stages[i].elideOut = true
		cp.stages[i+1].donated = true
		elided++
	}
	cp.fuseDesc = fmt.Sprintf("elide:%d", elided)

	// Pure chain inputs (read somewhere, written nowhere) with a
	// prepack-capable role get auto-prepack: their packed image survives
	// chain replays because no stage ever bumps their generation.
	for i := range cp.desc {
		d := &cp.desc[i]
		switch d.kind {
		case OpTRSM, OpTRMM:
			cp.stages[i].autoPre[0] = !cp.aliasWritten[d.alias[0]]
		case OpGEMM:
			pl := cp.stages[i].pv.(*core.GEMMPlan)
			cp.stages[i].autoPre[0] = pl.PackA && !cp.aliasWritten[d.alias[0]]
			cp.stages[i].autoPre[1] = pl.PackB && !cp.aliasWritten[d.alias[1]]
		}
	}
	return nil
}

// stagePlan resolves one stage's core plan through the regular plan
// cache (so chain and standalone calls of the same shape share plans
// and counters).
func (e *Engine) stagePlan(op *OpDesc, d *chainStageDesc, bucket int) (planKey, any, error) {
	switch d.kind {
	case OpGEMM:
		m, n := d.rows[2], d.cols[2]
		k := d.cols[0]
		if d.transA == matrix.Transpose {
			k = d.rows[0]
		}
		key := planKey{kind: OpGEMM, dt: d.dt, m: m, n: n, k: k,
			transA: d.transA, transB: d.transB, countBucket: bucket}
		pv, _, err := e.plan(key, func() (any, error) {
			return core.NewGEMMPlan(core.GEMMProblem{
				DT: d.dt, M: m, N: n, K: k, TransA: d.transA, TransB: d.transB,
				Alpha: 1, Beta: 1, Count: bucket,
			}, e.tun)
		})
		return key, pv, err
	case OpTRSM:
		m, n := d.rows[1], d.cols[1]
		key := planKey{kind: OpTRSM, dt: d.dt, m: m, n: n,
			transA: d.transA, side: d.side, uplo: d.uplo, diag: d.diag, countBucket: bucket}
		pv, _, err := e.plan(key, func() (any, error) {
			return core.NewTRSMPlan(core.TRSMProblem{
				DT: d.dt, M: m, N: n, Side: d.side, Uplo: d.uplo,
				TransA: d.transA, Diag: d.diag, Alpha: 1, Count: bucket,
			}, e.tun)
		})
		return key, pv, err
	case OpTRMM:
		m, n := d.rows[1], d.cols[1]
		key := planKey{kind: OpTRMM, dt: d.dt, m: m, n: n,
			transA: d.transA, side: d.side, uplo: d.uplo, diag: d.diag, countBucket: bucket}
		pv, _, err := e.plan(key, func() (any, error) {
			return core.NewTRMMPlan(core.TRMMProblem{
				DT: d.dt, M: m, N: n, Side: d.side, Uplo: d.uplo,
				TransA: d.transA, Diag: d.diag, Alpha: 1, Count: bucket,
			}, e.tun)
		})
		return key, pv, err
	case OpSYRK:
		n := d.rows[1]
		k := d.cols[0]
		if d.transA == matrix.Transpose {
			k = d.rows[0]
		}
		key := planKey{kind: OpSYRK, dt: d.dt, m: n, k: k,
			transA: d.transA, uplo: d.uplo, countBucket: bucket}
		pv, _, err := e.plan(key, func() (any, error) {
			return core.NewSYRKPlan(core.SYRKProblem{
				DT: d.dt, N: n, K: k, Uplo: d.uplo, Trans: d.transA,
				Alpha: 1, Beta: 1, Count: bucket,
			}, e.tun)
		})
		return key, pv, err
	}
	_ = op
	return planKey{}, nil, nil
}

// RunChain executes a chain synchronously: one plan resolution for the
// whole stage list, per-stage cached core plans, and packed-layout
// handoffs between fusable stages. Results are bit-identical to running
// the stages as individual calls in order. On failure the returned
// error is a *ChainError naming the failing stage, and every operand is
// left exactly as the serial prefix up to that stage would have left
// it.
func (e *Engine) RunChain(ctx context.Context, stages []ChainStage) error {
	cp, outcome, err := e.chainPlanFor(stages)
	if err != nil {
		return err
	}
	sp := e.obs.StartSpan(false)
	err = e.runChainInner(ctx, stages, cp, outcome, sp, true)
	e.obs.FinishSpan(sp, err, nil)
	return err
}

// RunChainSpanned is RunChain with a per-call span sink: the chain
// carries one parent span (Op "CHAIN", Mode the stage-kind list) that
// sink receives, with per-stage child spans delivered to the
// engine-level sink.
func (e *Engine) RunChainSpanned(ctx context.Context, stages []ChainStage, sink obs.SpanFunc) error {
	if sink == nil {
		return e.RunChain(ctx, stages)
	}
	cp, outcome, err := e.chainPlanFor(stages)
	if err != nil {
		return err
	}
	sp := e.obs.StartSpan(true)
	err = e.runChainInner(ctx, stages, cp, outcome, sp, true)
	e.obs.FinishSpan(sp, err, sink)
	return err
}

// runChainInner executes a resolved chain: fills the parent span, feeds
// the CHAIN shape series, and dispatches on element type. autoPre
// gates the pure-input auto-prepack (disabled for fused throwaway
// operands).
func (e *Engine) runChainInner(ctx context.Context, stages []ChainStage, cp *chainPlan, outcome obs.CacheOutcome, sp *obs.Span, autoPre bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.chainRuns.Add(1)
	d0 := &cp.desc[0]
	count := stages[0].count()
	if sp != nil {
		sp.Op = "CHAIN"
		sp.DType = d0.dt.String()
		sp.Mode = cp.label
		sp.M, sp.N = d0.rows[0], d0.cols[0]
		sp.Count = count
		sp.Workers = sched.Resolve(stages[0].Op.Workers)
	}
	series := e.obs.Series(obs.ShapeKey{Op: "CHAIN", DType: d0.dt.String(),
		Mode: cp.label, M: d0.rows[0], N: d0.cols[0]})
	series.Plan(outcome)
	series.SetWorkers(sched.Resolve(stages[0].Op.Workers))
	if outcome == obs.CacheMiss {
		series.SetPlan(0, cp.fuseDesc, 1)
	}
	start := time.Now()
	var err error
	if stages[0].Ops[0].F32 != nil {
		err = runChain[float32](e, ctx, stages, cp, sp, series, count, autoPre)
	} else {
		err = runChain[float64](e, ctx, stages, cp, sp, series, count, autoPre)
	}
	series.Record(time.Since(start), cp.flopsPerMatrix*float64(count), err != nil)
	return err
}

// compactOf recovers the typed compact from a type-erased operand.
func compactOf[E vec.Float](o Operand) *layout.Compact[E] {
	if o.F32 != nil {
		return any(o.F32).(*layout.Compact[E])
	}
	return any(o.F64).(*layout.Compact[E])
}

// resolveChainPre resolves the prepacked image of one chain-stage
// operand, first enabling prepack when the chain plan marked the slot
// as a pure chain input.
func resolveChainPre[E vec.Float](e *Engine, c *layout.Compact[E], auto bool, key planKey, role packRole, length int, build func([]E) error, series *obs.Series, child, parent *obs.Span) ([]E, *packEntry, error) {
	if auto {
		c.EnablePrepack()
	}
	id, gen := c.PrepackState()
	if id == 0 {
		return nil, nil, nil
	}
	ent, data, hit, err := acquirePacked[E](e, packKey{id: id, gen: gen, plan: key, role: role}, length, build)
	if err != nil {
		return nil, nil, err
	}
	series.Prepack(hit)
	child.Prepack(hit)
	parent.Prepack(hit)
	return data, ent, nil
}

// startChainChild opens one stage's child span under the chain's parent
// span (nil parent → nil child: chain tracing is all-or-nothing).
func (e *Engine) startChainChild(parent *obs.Span, st *ChainStage, d *chainStageDesc, count int) *obs.Span {
	if parent == nil {
		return nil
	}
	child := e.obs.StartSpan(true)
	child.ParentID = parent.ID
	child.Op = d.kind.String()
	child.DType = d.dt.String()
	child.Count = count
	child.Workers = sched.Resolve(st.Op.Workers)
	switch d.kind {
	case OpGEMM:
		child.Mode = gemmMode(d.transA, d.transB)
		child.M, child.N = d.rows[2], d.cols[2]
		child.K = d.cols[0]
		if d.transA == matrix.Transpose {
			child.K = d.rows[0]
		}
	case OpTRSM, OpTRMM:
		child.Mode = d.side.String() + d.transA.String() + d.uplo.String() + d.diag.String()
		child.M, child.N = d.rows[1], d.cols[1]
	case OpSYRK:
		child.Mode = d.transA.String() + d.uplo.String()
		child.M, child.N = d.rows[1], d.cols[1]
		child.K = d.cols[0]
		if d.transA == matrix.Transpose {
			child.K = d.rows[0]
		}
	default:
		child.M, child.N = d.rows[0], d.cols[0]
	}
	return child
}

// runChain is the typed chain executor. Canonical-image state threads
// between stages: liveB's storage is stale while canon holds its
// canonical image, and every exit path re-materializes before
// returning, so callers always observe serial-prefix semantics.
func runChain[E vec.Float](e *Engine, ctx context.Context, stages []ChainStage, cp *chainPlan, parent *obs.Span, series *obs.Series, count int, autoPre bool) error {
	var (
		canonBuf           *bufpool.Buf[E]
		canon              []E
		canonLive          bool
		liveB              *layout.Compact[E]
		liveRev, liveTrans bool
	)
	defer func() {
		if canonBuf != nil {
			bufpool.Put(e.rt.Bufs, canonBuf)
		}
	}()
	remat := func() {
		if !canonLive {
			return
		}
		core.ScatterCanonicalB(liveB, liveRev, liveTrans, canon)
		liveB.Invalidate()
		canonLive = false
	}
	for i := range stages {
		st := &stages[i]
		d := &cp.desc[i]
		spl := &cp.stages[i]
		if err := ctx.Err(); err != nil {
			remat()
			return &ChainError{Stage: i, Kind: d.kind, Err: err}
		}
		child := e.startChainChild(parent, st, d, count)
		t0 := time.Now()
		var err error
		switch d.kind {
		case OpLU, OpCholesky:
			ck := core.LUKind
			if d.kind == OpCholesky {
				ck = core.CholeskyKind
			}
			aC := compactOf[E](st.Ops[0])
			var info []int
			info, err = core.ExecFactorNative(e.rt, ck, aC, st.Op.Workers)
			aC.Invalidate()
			if err == nil {
				for _, code := range info {
					if code != 0 {
						err = &ChainError{Stage: i, Kind: d.kind, Info: info, Err: ErrSingular}
						break
					}
				}
			}
		case OpGEMM:
			pl := *spl.pv.(*core.GEMMPlan)
			pl.P.Alpha, pl.P.Beta, pl.P.Count = st.Op.Alpha, st.Op.Beta, count
			pl.RT = e.rt
			aC, bC, cC := compactOf[E](st.Ops[0]), compactOf[E](st.Ops[1]), compactOf[E](st.Ops[2])
			var preA, preB []E
			var entA, entB *packEntry
			if pl.PackA {
				preA, entA, err = resolveChainPre(e, aC, autoPre && spl.autoPre[0], spl.key, roleA,
					pl.PrepackALen(aC.Groups()), func(dst []E) error {
						return core.PrepackGEMMA(&pl, aC, dst)
					}, series, child, parent)
			}
			if err == nil && pl.PackB {
				preB, entB, err = resolveChainPre(e, bC, autoPre && spl.autoPre[1], spl.key, roleB,
					pl.PrepackBLen(bC.Groups()), func(dst []E) error {
						return core.PrepackGEMMB(&pl, bC, dst)
					}, series, child, parent)
			}
			if err == nil {
				err = core.ExecGEMMNativePrepacked(&pl, aC, bC, cC, preA, preB, st.Op.Workers)
				cC.Invalidate()
			}
			if entA != nil {
				e.packs.release(entA)
			}
			if entB != nil {
				e.packs.release(entB)
			}
		case OpSYRK:
			pl := *spl.pv.(*core.SYRKPlan)
			pl.P.Alpha, pl.P.Beta, pl.P.Count = st.Op.Alpha, st.Op.Beta, count
			pl.RT = e.rt
			aC, cC := compactOf[E](st.Ops[0]), compactOf[E](st.Ops[1])
			err = core.ExecSYRKNativeParallel(&pl, aC, cC, st.Op.Workers)
			cC.Invalidate()
		case OpTRSM:
			pl := *spl.pv.(*core.TRSMPlan)
			pl.P.Alpha, pl.P.Count = st.Op.Alpha, count
			pl.RT = e.rt
			aC, bC := compactOf[E](st.Ops[0]), compactOf[E](st.Ops[1])
			var preTri []E
			var ent *packEntry
			preTri, ent, err = resolveChainPre(e, aC, autoPre && spl.autoPre[0], spl.key, roleTri,
				pl.PrepackTriLen(aC.Groups()), func(dst []E) error {
					return core.PrepackTRSMTri(&pl, aC, dst)
				}, series, child, parent)
			if err == nil {
				if spl.donated || spl.elideOut {
					if !spl.donated {
						canonBuf = bufpool.Get[E](e.rt.Bufs, len(bC.Data))
						canon = canonBuf.Slice()[:len(bC.Data)]
					}
					var inB, outB []E
					if spl.donated {
						inB = canon
					}
					if spl.elideOut {
						outB = canon
					}
					err = core.ExecTRSMNativeChained(&pl, aC, bC, preTri, inB, outB, st.Op.Workers)
					if err == nil {
						if spl.donated {
							e.packElided.Add(1)
						}
						if spl.elideOut {
							e.scatterElided.Add(1)
							canonLive, liveB = true, bC
							liveRev, liveTrans = pl.ReverseB, pl.TransposeB
						} else {
							canonLive = false
							bufpool.Put(e.rt.Bufs, canonBuf)
							canonBuf, canon = nil, nil
							bC.Invalidate()
						}
					}
				} else {
					err = core.ExecTRSMNativePrepacked(&pl, aC, bC, preTri, st.Op.Workers)
					bC.Invalidate()
				}
			}
			if ent != nil {
				e.packs.release(ent)
			}
		case OpTRMM:
			pl := *spl.pv.(*core.TRMMPlan)
			pl.P.Alpha, pl.P.Count = st.Op.Alpha, count
			pl.RT = e.rt
			aC, bC := compactOf[E](st.Ops[0]), compactOf[E](st.Ops[1])
			var preTri []E
			var ent *packEntry
			preTri, ent, err = resolveChainPre(e, aC, autoPre && spl.autoPre[0], spl.key, roleTri,
				pl.PrepackTriLen(aC.Groups()), func(dst []E) error {
					return core.PrepackTRMMTri(&pl, aC, dst)
				}, series, child, parent)
			if err == nil {
				if spl.donated || spl.elideOut {
					if !spl.donated {
						canonBuf = bufpool.Get[E](e.rt.Bufs, len(bC.Data))
						canon = canonBuf.Slice()[:len(bC.Data)]
					}
					var inB, outB []E
					if spl.donated {
						inB = canon
					}
					if spl.elideOut {
						outB = canon
					}
					err = core.ExecTRMMNativeChained(&pl, aC, bC, preTri, inB, outB, st.Op.Workers)
					if err == nil {
						if spl.donated {
							e.packElided.Add(1)
						}
						if spl.elideOut {
							e.scatterElided.Add(1)
							canonLive, liveB = true, bC
							liveRev, liveTrans = pl.ReverseB, pl.TransposeB
						} else {
							canonLive = false
							bufpool.Put(e.rt.Bufs, canonBuf)
							canonBuf, canon = nil, nil
							bC.Invalidate()
						}
					}
				} else {
					err = core.ExecTRMMNativePrepacked(&pl, aC, bC, preTri, st.Op.Workers)
					bC.Invalidate()
				}
			}
			if ent != nil {
				e.packs.release(ent)
			}
		}
		child.Mark(obs.PhaseCompute, t0)
		e.obs.FinishSpan(child, err, nil)
		if err != nil {
			remat()
			var ce *ChainError
			if errors.As(err, &ce) {
				return err
			}
			return &ChainError{Stage: i, Kind: d.kind, Err: err}
		}
	}
	// Unreachable in a well-formed plan (the final stage never elides its
	// scatter), kept as a safety net.
	remat()
	return nil
}
