// Async chain submission: SubmitChain enqueues a whole chain as ONE
// queue identity. The dispatcher buckets chain requests by a fuse hash
// over the chain descriptor plus scalars and workers — never with
// ordinary requests — and coalesces same-identity chains into one fused
// chain over concatenated operands, exactly as runFused does for single
// ops. Alias structure is preserved: each distinct compact of the chain
// becomes one fused compact shared by the same stages, so handoff
// elision inside the fused chain works identically.
package engine

import (
	"context"
	"fmt"
	"math"
	"time"

	"iatf/internal/layout"
	"iatf/internal/obs"
)

// chainFuseHash condenses the chain identity two SubmitChain requests
// must share to be fused: the chain-plan hash (kinds, modes, dims,
// dtype, alias pattern, count bucket) plus every stage's scalars and
// worker request. Forced nonzero so a chain bucket can never collide
// with an ordinary request's zero chain field.
func chainFuseHash(cp *chainPlan, stages []ChainStage) uint64 {
	h := cp.hash
	for i := range stages {
		op := &stages[i].Op
		h = mix64(h, math.Float64bits(real(op.Alpha)))
		h = mix64(h, math.Float64bits(imag(op.Alpha)))
		h = mix64(h, math.Float64bits(real(op.Beta)))
		h = mix64(h, math.Float64bits(imag(op.Beta)))
		h = mix64(h, uint64(int64(op.Workers)))
	}
	if h == 0 {
		h = 1
	}
	return h
}

// chainFusable verifies (not just by hash) that a rider really matches
// the bundle lead: same chain analysis and identical per-stage scalars
// and workers. Mismatches — a hash collision — execute individually.
func chainFusable(lead, r *asyncReq) bool {
	if r == lead {
		return true
	}
	if len(r.chain) != len(lead.chain) {
		return false
	}
	if r.cplan != lead.cplan && !chainDescEqual(r.cplan, lead.cplan) {
		return false
	}
	for i := range lead.chain {
		a, b := &lead.chain[i].Op, &r.chain[i].Op
		if a.Alpha != b.Alpha || a.Beta != b.Beta || a.Workers != b.Workers {
			return false
		}
	}
	return true
}

// SubmitChain enqueues a chain on the engine's submission queue and
// returns its Future. The whole chain is one queue identity: it
// occupies one slot, coalesces only with identical chains, and executes
// atomically (stages never interleave with other requests' stages). The
// stage operands — and the stages slice itself — must not be mutated
// until the future resolves. Queue-idle submissions run inline on the
// caller, like Submit. Validation failures surface immediately as a
// *ChainError; a full queue returns ErrQueueFull.
func (e *Engine) SubmitChain(ctx context.Context, stages []ChainStage, sink obs.SpanFunc) (*Future, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cp, outcome, err := e.chainPlanFor(stages)
	if err != nil {
		return nil, err
	}
	q := &e.queue
	q.start(e)
	r := &asyncReq{ctx: ctx, op: stages[0].Op, fut: newFuture(), sink: sink,
		chain: stages, cplan: cp, outcome: outcome}
	r.chainHash = chainFuseHash(cp, stages)
	r.deadline, r.hasDL = ctx.Deadline()
	r.sp = e.obs.StartSpan(sink != nil)
	if len(q.ch) == 0 && q.busy.CompareAndSwap(false, true) {
		q.submitted.Add(1)
		q.inline.Add(1)
		err := e.runChainInner(ctx, stages, cp, outcome, r.sp, true)
		q.busy.Store(false)
		e.obs.FinishSpan(r.sp, err, r.sink)
		r.fut.resolve(err)
		return r.fut, nil
	}
	r.enq = time.Now()
	select {
	case q.ch <- r:
		q.submitted.Add(1)
		if d := len(q.ch) + int(q.inflight.Load()); d > 0 {
			q.noteDepth(d)
		} else {
			q.noteDepth(1)
		}
		return r.fut, nil
	default:
		q.rejected.Add(1)
		err := fmt.Errorf("iatf: CHAIN: %w (capacity %d)", ErrQueueFull, cap(q.ch))
		if r.sp != nil {
			r.sp.Op = "CHAIN"
		}
		e.obs.FinishSpan(r.sp, err, r.sink)
		return nil, err
	}
}

// runChainBundle executes one drained bundle of chain requests: two or
// more verified-identical chains run as one fused chain; everything
// else (single chains, factor-bearing chains, hash-collision riders)
// runs individually.
func (e *Engine) runChainBundle(reqs []*asyncReq) {
	q := &e.queue
	lead := reqs[0]
	var fused, solo []*asyncReq
	// Chains containing a factorization stage never fuse: concatenation
	// promotes each part's padding lanes to real matrices of the fused
	// batch, and a factor stage's per-matrix info scan would abort the
	// whole bundle on that garbage.
	if len(reqs) > 1 && !lead.cplan.hasFactor {
		for _, r := range reqs {
			if chainFusable(lead, r) {
				fused = append(fused, r)
			} else {
				solo = append(solo, r)
			}
		}
		if len(fused) < 2 {
			fused, solo = nil, reqs
		}
	} else {
		solo = reqs
	}
	if len(fused) > 1 {
		q.coalesced.Add(uint64(len(fused) - 1))
		for {
			old := q.maxFused.Load()
			if int64(len(fused)) <= old || q.maxFused.CompareAndSwap(old, int64(len(fused))) {
				break
			}
		}
		err := e.runFusedChain(fused)
		for _, r := range fused {
			r.fut.resolve(err)
		}
	}
	for _, r := range solo {
		err := e.runChainInner(r.ctx, r.chain, r.cplan, r.outcome, r.sp, true)
		e.obs.FinishSpan(r.sp, err, r.sink)
		r.fut.resolve(err)
	}
}

// runFusedChain concatenates the bundle's operands alias-wise — each
// distinct compact of the chain becomes one fused compact shared by the
// same stage slots — executes the fused chain once, and scatters every
// written alias back into each request's own storage. On error no
// scatter happens: the riders' operands are left untouched and every
// future resolves with the chain error (mirroring runFused).
func (e *Engine) runFusedChain(reqs []*asyncReq) error {
	lead := reqs[0]
	cp := lead.cplan
	force := false
	for _, r := range reqs {
		if r.sp != nil {
			force = true
			break
		}
	}
	parent := e.obs.StartSpan(force)
	var t0 time.Time
	if parent != nil {
		t0 = time.Now()
	}
	fusedOps := make([]Operand, cp.nAliases)
	for al := range fusedOps {
		ref := cp.aliasFirst[al]
		src := lead.chain[ref.stage].Ops[ref.slot]
		if src.F32 != nil {
			fusedOps[al] = Operand{DT: src.DT, F32: fuseCompacts(src.DT, chainPartsF32(reqs, ref))}
		} else {
			fusedOps[al] = Operand{DT: src.DT, F64: fuseCompacts(src.DT, chainPartsF64(reqs, ref))}
		}
	}
	fstages := make([]ChainStage, len(lead.chain))
	for i := range fstages {
		fstages[i] = lead.chain[i]
		for s := 0; s < fstages[i].NOps; s++ {
			fstages[i].Ops[s] = fusedOps[cp.desc[i].alias[s]]
		}
	}
	parent.Mark(obs.PhaseFuse, t0)
	// The fused chain resolves (and caches) its own plan — same analysis
	// at the fused count bucket. Auto-prepack is disabled: the fused
	// compacts are throwaways, and packing them would churn the cache.
	fcp, outcome, err := e.chainPlanFor(fstages)
	if err == nil {
		err = e.runChainInner(context.Background(), fstages, fcp, outcome, parent, false)
	}
	if err == nil {
		if parent != nil {
			t0 = time.Now()
		}
		for al := range fusedOps {
			if !cp.aliasWritten[al] {
				continue
			}
			ref := cp.aliasFirst[al]
			if fusedOps[al].F32 != nil {
				scatterCompacts(fusedOps[al].F32, chainPartsF32(reqs, ref))
			} else {
				scatterCompacts(fusedOps[al].F64, chainPartsF64(reqs, ref))
			}
		}
		parent.Mark(obs.PhaseScatter, t0)
	}
	if parent != nil {
		parent.Fused = len(reqs)
		finishFusedChainSpans(e, parent, reqs, err)
	}
	e.obs.FinishSpan(parent, err, nil)
	return err
}

// finishFusedChainSpans completes each rider's child span with the
// fused parent's descriptor and shared phases, the rider's own batch
// count and queue wait, linked by ParentID — the chain twin of
// finishFusedSpans.
func finishFusedChainSpans(e *Engine, parent *obs.Span, reqs []*asyncReq, err error) {
	for _, r := range reqs {
		sp := r.sp
		if sp == nil {
			continue
		}
		sp.ParentID = parent.ID
		sp.Op, sp.DType, sp.Mode = parent.Op, parent.DType, parent.Mode
		sp.M, sp.N, sp.K = parent.M, parent.N, parent.K
		sp.Workers = parent.Workers
		sp.PrepackHits, sp.PrepackBuilds = parent.PrepackHits, parent.PrepackBuilds
		sp.Count = r.chain[0].count()
		for p := obs.PhaseFuse; p < obs.PhaseCount; p++ {
			sp.Phases[p] = parent.Phases[p]
		}
		e.obs.FinishSpan(sp, err, r.sink)
	}
}

func chainPartsF32(reqs []*asyncReq, ref aliasRef) []*layout.Compact[float32] {
	out := make([]*layout.Compact[float32], len(reqs))
	for i, r := range reqs {
		out[i] = r.chain[ref.stage].Ops[ref.slot].F32
	}
	return out
}

func chainPartsF64(reqs []*asyncReq, ref aliasRef) []*layout.Compact[float64] {
	out := make([]*layout.Compact[float64], len(reqs))
	for i, r := range reqs {
		out[i] = r.chain[ref.stage].Ops[ref.slot].F64
	}
	return out
}
