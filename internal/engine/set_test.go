package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"iatf/internal/core"
	"iatf/internal/layout"
	"iatf/internal/matrix"
)

// setOperands builds a small pool of compact batches keyed by shape so
// the routing tests can hash thousands of identities without allocating
// thousands of batches.
type setOperands struct {
	rng   *rand.Rand
	cache map[[2]int]*layout.Compact[float32]
}

func newSetOperands(seed int64) *setOperands {
	return &setOperands{rng: rand.New(rand.NewSource(seed)), cache: map[[2]int]*layout.Compact[float32]{}}
}

func (so *setOperands) get(rows, cols int) Operand {
	k := [2]int{rows, cols}
	c, ok := so.cache[k]
	if !ok {
		c = randCompact(so.rng, 4, rows, cols)
		so.cache[k] = c
	}
	return op32(c)
}

// TestSetRoutingStability drives 10k pseudo-random problem identities
// through the router and asserts (a) routing is deterministic, (b) it
// ignores scalars and the worker request (plan and pack geometry ignore
// them, so they must not split an identity across shards), (c) every
// shard of a 4-way set receives a reasonable share, and (d) growing the
// set relocates only a minority of keys (jump consistent hashing).
func TestSetRoutingStability(t *testing.T) {
	s := NewSet(core.DefaultTuning(), 4)
	so := newSetOperands(70)
	rng := rand.New(rand.NewSource(71))

	const keys = 10000
	counts := make([]int, 4)
	moved := 0
	for i := 0; i < keys; i++ {
		kind := []OpKind{OpGEMM, OpTRSM, OpTRMM, OpSYRK}[rng.Intn(4)]
		op := OpDesc{
			Kind:   kind,
			TransA: matrix.Trans(rng.Intn(2)), TransB: matrix.Trans(rng.Intn(2)),
			Side: matrix.Side(rng.Intn(2)), Uplo: matrix.Uplo(rng.Intn(2)), Diag: matrix.Diag(rng.Intn(2)),
			Alpha: complex(rng.Float64(), 0), Beta: complex(rng.Float64(), 0),
			Workers: rng.Intn(8),
		}
		m, n, k := 1+rng.Intn(16), 1+rng.Intn(16), 1+rng.Intn(16)
		var ops []Operand
		switch kind {
		case OpGEMM:
			ops = []Operand{so.get(m, k), so.get(k, n), so.get(m, n)}
		case OpTRSM, OpTRMM:
			ops = []Operand{so.get(m, m), so.get(m, n)}
		case OpSYRK:
			ops = []Operand{so.get(n, k), so.get(n, n)}
		}

		sh := s.route(op, ops)
		if again := s.route(op, ops); again != sh {
			t.Fatalf("key %d: route not deterministic: %d then %d", i, sh, again)
		}
		// Scalars and workers must not move the key.
		op2 := op
		op2.Alpha, op2.Beta, op2.Workers = complex(9, 0), complex(-3, 0), 99
		if s.route(op2, ops) != sh {
			t.Fatalf("key %d: scalars/workers changed the route", i)
		}
		counts[sh]++
		if jumpHash(routeHash(op, ops), 5) != sh {
			moved++
		}
	}
	for sh, c := range counts {
		if c < keys/10 {
			t.Errorf("shard %d received %d of %d keys — router is badly skewed: %v", sh, c, keys, counts)
		}
	}
	// Going 4 -> 5 shards should relocate ~1/5 of the keys, not ~4/5
	// (the modulo-hash failure mode).
	if moved > keys*35/100 {
		t.Errorf("growing 4 -> 5 shards moved %d/%d keys, want ~20%%", moved, keys)
	}
}

// setHomeGEMM probes GEMM square sizes until one routes to the wanted
// shard, returning the descriptor and fresh operands for it.
func setHomeGEMM(t *testing.T, s *Set, rng *rand.Rand, want, count int) (OpDesc, func() (a, b, c *layout.Compact[float32])) {
	t.Helper()
	desc := OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 1, Workers: 1}
	for n := 3; n < 64; n++ {
		a, b, c := gemmReqOperands(rng, count, n, n, n)
		if s.route(desc, []Operand{op32(a), op32(b), op32(c)}) == want {
			size := n
			return desc, func() (a, b, c *layout.Compact[float32]) {
				return gemmReqOperands(rng, count, size, size, size)
			}
		}
	}
	t.Fatalf("no GEMM size routes to shard %d", want)
	return desc, nil
}

// parkOccupier submits same-identity occupiers until the target shard's
// dispatcher drains one and parks in its test hook. holdDispatcher
// forces the busy flag (to defeat the inline path), which also marks
// the shard an eligible steal victim — so a lone queued occupier can
// lose the race to an idle sibling's poller. A stolen occupier simply
// resolves on the thief; retry until the home dispatcher wins one.
func parkOccupier(t *testing.T, s *Set, desc OpDesc, mk func() (a, b, c *layout.Compact[float32]), entered chan int) (f *Future, occs int) {
	t.Helper()
	ctx := context.Background()
	for try := 0; try < 100; try++ {
		a, b, c := mk()
		f, err := s.Submit(ctx, desc, op32(a), op32(b), op32(c))
		if err != nil {
			t.Fatal(err)
		}
		occs++
		select {
		case <-entered:
			return f, occs
		case <-f.Done():
			if err := f.Err(); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Fatal("dispatcher never parked: the sibling stole every occupier")
	return nil, occs
}

// TestSetStealParity parks the home shard's dispatcher, queues a burst
// of same-identity requests behind it, and asserts the idle sibling
// steals and executes them — with results bit-identical to serial
// direct runs on a reference engine, and the theft visible in the
// thief's stolen counters.
func TestSetStealParity(t *testing.T) {
	s := NewSet(core.DefaultTuning(), 2)
	ref := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(72))

	const home = 0
	desc, mk := setHomeGEMM(t, s, rng, home, 13)
	entered, gate := holdDispatcher(s.engines[home])

	ctx := context.Background()
	// Occupier: starts every dispatcher (the set's first Submit), is
	// drained by the home dispatcher, and parks it in the test hook.
	f0, occs := parkOccupier(t, s, desc, mk, entered)

	const N = 6
	var futs [N]*Future
	var cs, want [N]*layout.Compact[float32]
	for i := 0; i < N; i++ {
		a, b, c := mk()
		want[i] = c.Clone()
		if err := ref.Run(desc, op32(a), op32(b), op32(want[i])); err != nil {
			t.Fatal(err)
		}
		cs[i] = c
		var err error
		if futs[i], err = s.Submit(ctx, desc, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}

	// Only the sibling can resolve these: the home dispatcher is parked.
	deadline := time.After(10 * time.Second)
	for i := 0; i < N; i++ {
		select {
		case <-futs[i].Done():
			if err := futs[i].Err(); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatalf("request %d not stolen within deadline (home dispatcher parked)", i)
		}
	}
	for i := 0; i < N; i++ {
		for j := range cs[i].Data {
			if cs[i].Data[j] != want[i].Data[j] {
				t.Fatalf("stolen request %d diverges from serial run at element %d: %g != %g",
					i, j, cs[i].Data[j], want[i].Data[j])
			}
		}
	}

	thief := s.engines[1].Stats().Queue
	if thief.StolenBatches == 0 || thief.StolenReqs == 0 {
		t.Errorf("thief shard shows no theft: batches=%d reqs=%d", thief.StolenBatches, thief.StolenReqs)
	}
	if max := uint64(N + occs - 1); thief.StolenReqs > max {
		t.Errorf("thief stole %d requests, only %d were queued", thief.StolenReqs, max)
	}

	close(gate)
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}

	// The set aggregate must account for every submission once.
	agg := s.Stats()
	if got := agg.Aggregate.Queue.Submitted; got != uint64(N+occs) {
		t.Errorf("aggregate submitted = %d, want %d", got, N+occs)
	}
	if agg.Aggregate.Queue.StolenReqs != thief.StolenReqs {
		t.Errorf("aggregate stolen reqs = %d, want %d", agg.Aggregate.Queue.StolenReqs, thief.StolenReqs)
	}
}

// TestSetQueueFullFallback fills the home shard's one-slot queue with
// both dispatchers parked and asserts the next submission falls back to
// the sibling (counted, no error) and the one after that — with both
// queues full — surfaces ErrQueueFull with the reject counted.
func TestSetQueueFullFallback(t *testing.T) {
	s := NewSet(core.DefaultTuning(), 2)
	rng := rand.New(rand.NewSource(73))

	// Capacity must be settable after NewSet (dispatchers are lazy)...
	for i := range s.engines {
		if err := s.engines[i].SetQueueCapacity(1); err != nil {
			t.Fatalf("SetQueueCapacity before first Submit: %v", err)
		}
	}

	desc0, mk0 := setHomeGEMM(t, s, rng, 0, 8)
	desc1, mk1 := setHomeGEMM(t, s, rng, 1, 8)
	entered0, gate0 := holdDispatcher(s.engines[0])
	entered1, gate1 := holdDispatcher(s.engines[1])

	ctx := context.Background()
	submit := func(desc OpDesc, mk func() (a, b, c *layout.Compact[float32])) (*Future, error) {
		a, b, c := mk()
		return s.Submit(ctx, desc, op32(a), op32(b), op32(c))
	}

	// Park both dispatchers, each on an occupier routed to it (retrying
	// occupiers the other shard's poller steals first).
	occ0, _ := parkOccupier(t, s, desc0, mk0, entered0)
	occ1, _ := parkOccupier(t, s, desc1, mk1, entered1)

	// ...and must be rejected once the dispatchers are live.
	if err := s.engines[0].SetQueueCapacity(64); !errors.Is(err, ErrQueueStarted) {
		t.Fatalf("SetQueueCapacity after start: err = %v, want ErrQueueStarted", err)
	}

	// Fill home (shard 0): one slot.
	q1, err := submit(desc0, mk0)
	if err != nil {
		t.Fatal(err)
	}
	// Home full -> sibling fallback, no error.
	q2, err := submit(desc0, mk0)
	if err != nil {
		t.Fatalf("fallback submission failed: %v", err)
	}
	if got := s.Stats().Fallbacks; got != 1 {
		t.Errorf("fallbacks = %d, want 1", got)
	}
	// Both full -> typed backpressure.
	if _, err := submit(desc0, mk0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("both-full submission: err = %v, want ErrQueueFull", err)
	}
	st := s.Stats()
	if st.FallbackRejects != 1 {
		t.Errorf("fallback rejects = %d, want 1", st.FallbackRejects)
	}

	close(gate0)
	close(gate1)
	for _, f := range []*Future{occ0, occ1, q1, q2} {
		if err := f.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSetShardIsolation: traffic on one shard must not move a sibling
// shard's caches or counters — each shard owns its runtime wholesale.
func TestSetShardIsolation(t *testing.T) {
	s := NewSet(core.DefaultTuning(), 2)
	rng := rand.New(rand.NewSource(74))
	desc, mk := setHomeGEMM(t, s, rng, 0, 8)

	before := s.engines[1].Stats()
	for i := 0; i < 4; i++ {
		a, b, c := mk()
		if err := s.Run(desc, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}
	after0 := s.engines[0].Stats()
	after1 := s.engines[1].Stats()
	if after0.PlanHits+after0.PlanMisses == 0 {
		t.Error("home shard saw no plan traffic")
	}
	if after1.PlanHits != before.PlanHits || after1.PlanMisses != before.PlanMisses ||
		after1.PlanEntries != before.PlanEntries {
		t.Errorf("idle sibling's plan cache moved: %+v -> %+v", before.PlanEntries, after1.PlanEntries)
	}
	if after1.Buffers.Gets != before.Buffers.Gets {
		t.Errorf("idle sibling's buffer pool moved: gets %d -> %d", before.Buffers.Gets, after1.Buffers.Gets)
	}
	if len(s.Stats().Shards) != 2 {
		t.Fatal("SetStats missing shards")
	}
}

// TestSetShapeShardLabels: per-shard snapshots carry their shard index,
// the aggregate merges same-identity series across shards, and a solo
// engine stays unlabeled (-1).
func TestSetShapeShardLabels(t *testing.T) {
	s := NewSet(core.DefaultTuning(), 2)
	rng := rand.New(rand.NewSource(75))
	desc, mk := setHomeGEMM(t, s, rng, 1, 8)
	a, b, c := mk()
	if err := s.Run(desc, op32(a), op32(b), op32(c)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	found := false
	for _, sh := range st.Shards[1].Shapes {
		if sh.Op == "GEMM" {
			if sh.Shard != 1 {
				t.Errorf("shard 1 snapshot labeled %d", sh.Shard)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("home shard's shape series missing the GEMM")
	}
	if len(st.Aggregate.Shapes) == 0 {
		t.Fatal("aggregate shapes empty")
	}
	for _, sh := range st.Aggregate.Shapes {
		if sh.Shard != -1 {
			t.Errorf("aggregate snapshot carries shard %d, want -1 (merged)", sh.Shard)
		}
	}

	solo := New(core.DefaultTuning())
	a2, b2, c2 := gemmReqOperands(rng, 8, 4, 4, 4)
	if err := solo.Run(OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 1, Workers: 1}, op32(a2), op32(b2), op32(c2)); err != nil {
		t.Fatal(err)
	}
	for _, sh := range solo.Stats().Shapes {
		if sh.Shard != -1 {
			t.Errorf("solo engine snapshot labeled shard %d, want -1", sh.Shard)
		}
	}
}

// TestSetAggregateShapesMath checks the merge rules of AggregateShapes
// through the set surface: calls sum, AvgGFLOPS stays call-weighted and
// quantiles take the per-shard max (documented conservative).
func TestSetAggregateShapesMath(t *testing.T) {
	s := NewSet(core.DefaultTuning(), 2)
	rng := rand.New(rand.NewSource(76))
	desc, mk := setHomeGEMM(t, s, rng, 0, 8)
	const calls = 3
	for i := 0; i < calls; i++ {
		a, b, c := mk()
		if err := s.Run(desc, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	var total uint64
	for _, shard := range st.Shards {
		for _, sh := range shard.Shapes {
			total += sh.Calls
		}
	}
	var aggTotal uint64
	for _, sh := range st.Aggregate.Shapes {
		aggTotal += sh.Calls
	}
	if total != calls || aggTotal != calls {
		t.Errorf("calls: per-shard %d, aggregate %d, want %d", total, aggTotal, calls)
	}
}

// TestSetRunParity: the same problem produces bit-identical results
// through a Set and through a solo engine (identity-affine routing must
// not change numerics), for every dtype.
func TestSetRunParity(t *testing.T) {
	s := NewSet(core.DefaultTuning(), 3)
	solo := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(77))
	desc := OpDesc{Kind: OpGEMM, Alpha: complex(1.25, 0), Beta: complex(0.5, 0), Workers: 1}

	for _, dim := range [][3]int{{4, 4, 4}, {6, 5, 7}, {12, 9, 3}} {
		a, b, c := gemmReqOperands(rng, 11, dim[0], dim[1], dim[2])
		want := c.Clone()
		if err := solo.Run(desc, op32(a), op32(b), op32(want)); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(desc, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
		for j := range c.Data {
			if c.Data[j] != want.Data[j] {
				t.Fatalf("%v: set result diverges at %d", dim, j)
			}
		}
	}
}

// TestSetLeastLoadedSnapshotCoherence: the queue-full fallback's shard
// choice samples every depth into one snapshot before comparing, so
// under concurrent depth churn it must never return the shard it was
// asked to exclude (the one that just rejected the submission) and must
// always return a valid sibling. Before the snapshot fix the argmin scan
// interleaved live len(ch) reads, which could crown the skipped shard
// when depths moved mid-scan.
func TestSetLeastLoadedSnapshotCoherence(t *testing.T) {
	s := NewSet(core.DefaultTuning(), 4)
	// Materialize the queue channels without starting dispatchers: the
	// test drives depth churn directly and nothing may drain it.
	for i := range s.engines {
		s.engines[i].queue.ch = make(chan *asyncReq, 8)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range s.engines {
		ch := s.engines[i].queue.ch
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				select {
				case ch <- &asyncReq{}:
				default:
				}
				select {
				case <-ch:
				default:
				}
			}
		}()
	}

	for skip := range s.engines {
		for iter := 0; iter < 5000; iter++ {
			got := s.leastLoaded(skip)
			if got == skip {
				t.Fatalf("leastLoaded(%d) returned the skipped shard under churn (iter %d)", skip, iter)
			}
			if got < 0 || got >= len(s.engines) {
				t.Fatalf("leastLoaded(%d) = %d, out of range", skip, got)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Degenerate single-shard set: with no sibling to fall back to the
	// skipped shard is the only possible answer.
	solo := NewSet(core.DefaultTuning(), 1)
	solo.engines[0].queue.ch = make(chan *asyncReq, 2)
	if got := solo.leastLoaded(0); got != 0 {
		t.Fatalf("single-shard leastLoaded(0) = %d, want 0", got)
	}
}

// TestSetLeastLoadedPicksShallowest: with static unequal depths the
// snapshot argmin must find the true minimum among the non-skipped
// shards — including when the skipped shard itself is the shallowest.
func TestSetLeastLoadedPicksShallowest(t *testing.T) {
	s := NewSet(core.DefaultTuning(), 4)
	depths := []int{0, 3, 1, 2}
	for i := range s.engines {
		s.engines[i].queue.ch = make(chan *asyncReq, 8)
		for d := 0; d < depths[i]; d++ {
			s.engines[i].queue.ch <- &asyncReq{}
		}
	}
	if got := s.leastLoaded(1); got != 0 {
		t.Fatalf("leastLoaded(1) = %d, want 0 (depth 0)", got)
	}
	// Skip the shallowest: the next-best sibling wins, not the skipped one.
	if got := s.leastLoaded(0); got != 2 {
		t.Fatalf("leastLoaded(0) = %d, want 2 (depth 1)", got)
	}
}
