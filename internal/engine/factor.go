// Factor dispatch: the compact batched factorizations (LU, Cholesky,
// pivoted LU) route through the engine like every level-3 op, gaining
// the typed validation taxonomy, per-shape observability series and
// plan-cache counters. A factorization needs no packing or tiling plan —
// each interleave group is one kernel call — so its cached "plan" is
// just the per-matrix flop model the observability layer records
// against.
package engine

import (
	"time"

	"iatf/internal/core"
	"iatf/internal/obs"
	"iatf/internal/sched"
)

// factorPlan is the cached plan of a factorization: the flop count of
// one matrix (the only input-aware quantity the run-time stage needs).
type factorPlan struct {
	flopsPerMatrix float64
}

// factorFLOPs models the per-matrix work: ~2n³/3 for (pivoted) LU,
// ~n³/3 for Cholesky.
func factorFLOPs(kind OpKind, n int) float64 {
	fn := float64(n)
	if kind == OpCholesky {
		return fn * fn * fn / 3
	}
	return 2 * fn * fn * fn / 3
}

// checkFactor validates a factorization operand with the engine
// taxonomy: present, square, and real-typed for Cholesky.
func checkFactor(kind OpKind, a Operand) error {
	if !a.valid() {
		return opErr(kind, "A", ErrOperand, "nil or empty")
	}
	if a.rows() != a.cols() {
		return opErr(kind, "A", ErrShape, "square matrices required, got %dx%d", a.rows(), a.cols())
	}
	if kind == OpCholesky && a.DT.IsComplex() {
		return opErr(kind, "A", ErrDType, "real element types required, got %s", a.DT)
	}
	return nil
}

// factorSeries resolves the plan (cache counters) and obs series for a
// factorization call and returns the per-matrix flop model.
func (e *Engine) factorSeries(kind OpKind, a Operand, workers int) (*obs.Series, float64) {
	n := a.rows()
	key := planKey{kind: kind, dt: a.DT, m: n, countBucket: 1}
	pv, outcome, _ := e.plan(key, func() (any, error) {
		return &factorPlan{flopsPerMatrix: factorFLOPs(kind, n)}, nil
	})
	series := e.obs.Series(obs.ShapeKey{Op: kind.String(), DType: a.DT.String(), M: n, N: n})
	series.Plan(outcome)
	series.SetWorkers(sched.Resolve(workers))
	if outcome == obs.CacheMiss || outcome == obs.CacheHydrated {
		series.SetPlan(0, "in-place", 1)
	}
	return series, pv.(*factorPlan).flopsPerMatrix
}

// RunFactor is the dispatch path for the in-place factorizations
// (OpLU, OpCholesky): it validates A, resolves the factor plan through
// the cache, executes on the native kernels and returns the per-matrix
// info codes (0 = success, k+1 = first failing pivot column).
func (e *Engine) RunFactor(op OpDesc, a Operand) ([]int, error) {
	if op.Kind != OpLU && op.Kind != OpCholesky {
		return nil, opErr(op.Kind, "", ErrOperand, "not a factorization kind")
	}
	if err := checkFactor(op.Kind, a); err != nil {
		return nil, err
	}
	series, perMatrix := e.factorSeries(op.Kind, a, op.Workers)
	coreKind := core.LUKind
	if op.Kind == OpCholesky {
		coreKind = core.CholeskyKind
	}
	start := time.Now()
	var info []int
	var err error
	if a.F32 != nil {
		info, err = core.ExecFactorNative(e.rt, coreKind, a.F32, op.Workers)
		a.F32.Invalidate() // the call rewrote A in place
	} else {
		info, err = core.ExecFactorNative(e.rt, coreKind, a.F64, op.Workers)
		a.F64.Invalidate()
	}
	series.Record(time.Since(start), perMatrix*float64(a.count()), err != nil)
	return info, err
}

// RunLUPiv is RunFactor for the partially pivoted LU, which additionally
// returns the pivot record consumed by the pivoted solve.
func (e *Engine) RunLUPiv(op OpDesc, a Operand) (*core.Pivots, []int, error) {
	if err := checkFactor(OpLUPiv, a); err != nil {
		return nil, nil, err
	}
	series, perMatrix := e.factorSeries(OpLUPiv, a, op.Workers)
	start := time.Now()
	var (
		piv  *core.Pivots
		info []int
		err  error
	)
	if a.F32 != nil {
		piv, info, err = core.ExecLUPivNative(e.rt, a.F32, op.Workers)
		a.F32.Invalidate()
	} else {
		piv, info, err = core.ExecLUPivNative(e.rt, a.F64, op.Workers)
		a.F64.Invalidate()
	}
	series.Record(time.Since(start), perMatrix*float64(a.count()), err != nil)
	return piv, info, err
}
