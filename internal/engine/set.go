// Sharded multi-engine scale-out: a Set owns N fully isolated engines
// and routes every call by consistent hashing on the problem identity.
//
// The paper's run-time stage — and this reproduction through PR 5 — is a
// single dispatch loop: one engine, one submission queue, one dispatcher
// goroutine. Heavy mixed traffic therefore serializes behind one drain
// loop no matter how many cores the machine has. The Set multiplies the
// dispatcher while keeping the property that makes the run-time stage
// cheap: input-aware caches (plan cache, packed-operand cache, buffer
// pools) stay hot per problem identity, because the router sends every
// occurrence of one identity to the same shard.
//
//   - Routing is identity-affine: the route key hashes the op kind, mode
//     flags, dtype and operand dimensions — the same fields the async
//     coalescer partitions on, minus scalars and worker count (plan
//     geometry ignores those). Jump consistent hashing maps the key onto
//     a shard, so the mapping is stable for a given shard count and
//     minimally disturbed when the count changes.
//   - Every shard is a full Engine with its own core.Runtime: plan cache,
//     pack cache, buffer pools, worker pool, obs registry and submission
//     queue are strictly per-shard. A shard's packing churn cannot evict
//     a sibling's warm buffers; each shard's worker fleet is capped at
//     its share of the machine (NumCPU/shards) so shards place
//     NUMA-style instead of all fighting for every core.
//   - Bounded work stealing keeps the shards busy under skew: an idle
//     shard's dispatcher polls sibling queues and pulls up to half of the
//     deepest one, executing the stolen requests locally. Results are
//     bit-identical wherever a request runs — every shard shares the
//     tuning, and stolen prepack lookups re-key automatically because
//     packed-image identity (operand id, generation, plan geometry) is
//     engine-independent; the thief simply builds or reuses its own
//     cache entry.
//   - Backpressure falls sideways before failing: a Submit that finds its
//     home shard's queue full retries once on the least-loaded sibling
//     and only then returns ErrQueueFull.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"iatf/internal/core"
	"iatf/internal/obs"
)

// coresPerShard is the default core budget per shard: DefaultShards
// carves the machine into fleets of this size.
const coresPerShard = 2

// DefaultShards returns the default shard count of NewSet:
// min(GOMAXPROCS, NumCPU/coresPerShard), floored at 1. One dispatcher
// per ~2 cores keeps dispatchers from outnumbering the compute capacity
// behind them.
func DefaultShards() int {
	n := runtime.NumCPU() / coresPerShard
	if g := runtime.GOMAXPROCS(0); g < n {
		n = g
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Set is a sharded group of engines behind one dispatch surface. All
// methods are safe for concurrent use. A Set's dispatchers run for the
// life of the process (like a solo engine's); create Sets once and
// reuse them.
type Set struct {
	engines []*Engine
	routed  []atomic.Uint64 // per-shard: calls routed here (sync + async)
	started sync.Once       // all dispatchers start together on first Submit

	fallbacks       atomic.Uint64 // submissions redirected to a sibling on queue-full
	fallbackRejects atomic.Uint64 // redirects that found the sibling full too
}

// NewSet builds a set of n isolated engines sharing one tuning
// configuration (n <= 0 uses DefaultShards). Every shard's worker fleet
// is capped at its core share, max(1, NumCPU/n). Dispatchers start
// together on the set's first Submit — work stealing needs every
// sibling's drain loop alive, and deferring the start keeps
// SetQueueCapacity usable after construction.
func NewSet(tun core.Tuning, n int) *Set {
	if n <= 0 {
		n = DefaultShards()
	}
	s := &Set{
		engines: make([]*Engine, n),
		routed:  make([]atomic.Uint64, n),
	}
	budget := runtime.NumCPU() / n
	if budget < 1 {
		budget = 1
	}
	for i := range s.engines {
		e := New(tun)
		e.rt.Sched.SetMaxWorkers(budget)
		e.obs.SetShard(i)
		s.engines[i] = e
	}
	// Install the steal hooks after every shard exists (a hook scans all
	// sibling queues) but before any dispatcher can start: dispatchLoop
	// reads its steal hook once at entry.
	for i := range s.engines {
		self := i
		s.engines[i].queue.steal = func(batch *[]*asyncReq) int {
			return s.stealInto(self, batch)
		}
	}
	return s
}

// startAll brings up every shard's dispatcher. Run once, on the set's
// first Submit, so all drain loops exist before any request can sit in
// a queue waiting for a thief that was never born.
func (s *Set) startAll() {
	for _, e := range s.engines {
		e.queue.start(e)
	}
}

// Shards returns the shard count.
func (s *Set) Shards() int { return len(s.engines) }

// Shard returns shard i's engine — per-shard introspection (stats,
// metrics, traces) and explicit shard targeting. The returned engine is
// live; routing invariants are the caller's problem if it submits work
// directly.
func (s *Set) Shard(i int) *Engine { return s.engines[i] }

// mix64 folds v into the running FNV-1a style hash h.
func mix64(h, v uint64) uint64 {
	h ^= v
	return h * 0x100000001b3
}

// routeHash condenses the problem identity — op kind, mode flags, dtype,
// operand dimensions and arity — into the routing key. Scalars and the
// worker request are deliberately excluded (the coalescer separates
// them into distinct bundles, but plan and pack geometry ignore them,
// so keeping such calls on one shard preserves cache affinity).
// Allocation-free: the warm sync path routes through here.
func routeHash(op OpDesc, operands []Operand) uint64 {
	h := uint64(0xcbf29ce484222325)
	h = mix64(h, uint64(op.Kind))
	h = mix64(h, uint64(op.TransA))
	h = mix64(h, uint64(op.TransB))
	h = mix64(h, uint64(op.Side))
	h = mix64(h, uint64(op.Uplo))
	h = mix64(h, uint64(op.Diag))
	h = mix64(h, uint64(len(operands)))
	for i := range operands {
		o := &operands[i]
		if !o.valid() {
			// Malformed operands keep a zero signature; the call fails
			// validation identically on any shard.
			h = mix64(h, 0)
			continue
		}
		h = mix64(h, uint64(o.DT))
		h = mix64(h, uint64(o.rows()))
		h = mix64(h, uint64(o.cols()))
	}
	return h
}

// jumpHash is Lamping–Veach jump consistent hashing: maps key onto
// [0, n) such that changing n relocates only ~1/n of the keys.
func jumpHash(key uint64, n int) int {
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// route picks the home shard of a problem identity.
func (s *Set) route(op OpDesc, operands []Operand) int {
	return jumpHash(routeHash(op, operands), len(s.engines))
}

// Run executes one call synchronously on the identity's home shard. Same
// contract (and allocation budget) as Engine.Run.
func (s *Set) Run(op OpDesc, operands ...Operand) error {
	sh := s.route(op, operands)
	s.routed[sh].Add(1)
	return s.engines[sh].Run(op, operands...)
}

// RunSpanned is Run with a per-call span sink; see Engine.RunSpanned.
func (s *Set) RunSpanned(op OpDesc, sink obs.SpanFunc, operands ...Operand) error {
	sh := s.route(op, operands)
	s.routed[sh].Add(1)
	return s.engines[sh].RunSpanned(op, sink, operands...)
}

// Submit enqueues one request on the identity's home shard. If the home
// queue is full the request falls back to the least-loaded sibling once
// (losing cache affinity for that one call but keeping it alive) before
// surfacing ErrQueueFull.
func (s *Set) Submit(ctx context.Context, op OpDesc, operands ...Operand) (*Future, error) {
	return s.SubmitSpanned(ctx, op, nil, operands...)
}

// SubmitSpanned is Submit with a per-request span sink; see
// Engine.SubmitSpanned.
func (s *Set) SubmitSpanned(ctx context.Context, op OpDesc, sink obs.SpanFunc, operands ...Operand) (*Future, error) {
	s.started.Do(s.startAll)
	sh := s.route(op, operands)
	s.routed[sh].Add(1)
	fut, err := s.engines[sh].SubmitSpanned(ctx, op, sink, operands...)
	if err == nil || !errors.Is(err, ErrQueueFull) || len(s.engines) == 1 {
		return fut, err
	}
	alt := s.leastLoaded(sh)
	if alt == sh {
		return fut, err
	}
	s.fallbacks.Add(1)
	fut2, err2 := s.engines[alt].SubmitSpanned(ctx, op, sink, operands...)
	if err2 != nil && errors.Is(err2, ErrQueueFull) {
		s.fallbackRejects.Add(1)
		return nil, err // surface the home shard's error
	}
	return fut2, err2
}

// chainRouteHash folds every stage's problem identity into one routing
// key, so a whole chain — like a single call — always lands on the
// shard whose caches have seen it before.
func chainRouteHash(stages []ChainStage) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	h = mix64(h, uint64(len(stages)))
	for i := range stages {
		st := &stages[i]
		h = mix64(h, routeHash(st.Op, st.Ops[:st.NOps]))
	}
	return h
}

// routeChain picks the home shard of a chain identity.
func (s *Set) routeChain(stages []ChainStage) int {
	return jumpHash(chainRouteHash(stages), len(s.engines))
}

// RunChain executes a chain synchronously on its home shard; see
// Engine.RunChain.
func (s *Set) RunChain(ctx context.Context, stages []ChainStage) error {
	sh := s.routeChain(stages)
	s.routed[sh].Add(1)
	return s.engines[sh].RunChain(ctx, stages)
}

// RunChainSpanned is RunChain with a per-call span sink; see
// Engine.RunChainSpanned.
func (s *Set) RunChainSpanned(ctx context.Context, stages []ChainStage, sink obs.SpanFunc) error {
	sh := s.routeChain(stages)
	s.routed[sh].Add(1)
	return s.engines[sh].RunChainSpanned(ctx, stages, sink)
}

// SubmitChain enqueues a chain on its home shard with the same
// queue-full sibling fallback as SubmitSpanned; see Engine.SubmitChain.
func (s *Set) SubmitChain(ctx context.Context, stages []ChainStage, sink obs.SpanFunc) (*Future, error) {
	s.started.Do(s.startAll)
	sh := s.routeChain(stages)
	s.routed[sh].Add(1)
	fut, err := s.engines[sh].SubmitChain(ctx, stages, sink)
	if err == nil || !errors.Is(err, ErrQueueFull) || len(s.engines) == 1 {
		return fut, err
	}
	alt := s.leastLoaded(sh)
	if alt == sh {
		return fut, err
	}
	s.fallbacks.Add(1)
	fut2, err2 := s.engines[alt].SubmitChain(ctx, stages, sink)
	if err2 != nil && errors.Is(err2, ErrQueueFull) {
		s.fallbackRejects.Add(1)
		return nil, err // surface the home shard's error
	}
	return fut2, err2
}

// RunFactor routes a factorization to its home shard; see
// Engine.RunFactor.
func (s *Set) RunFactor(op OpDesc, a Operand) ([]int, error) {
	sh := s.route(op, []Operand{a})
	s.routed[sh].Add(1)
	return s.engines[sh].RunFactor(op, a)
}

// RunLUPiv routes a pivoted LU to its home shard; see Engine.RunLUPiv.
func (s *Set) RunLUPiv(op OpDesc, a Operand) (*core.Pivots, []int, error) {
	sh := s.route(op, []Operand{a})
	s.routed[sh].Add(1)
	return s.engines[sh].RunLUPiv(op, a)
}

// leastLoaded returns the shard with the shallowest queue, excluding
// skip. Every depth is sampled into one snapshot before any comparison,
// so the decision is coherent: concurrent churn between samples cannot
// interleave with the argmin scan, and with at least one sibling present
// the result is never skip — a queue-full fallback must not retry the
// shard that just rejected it. The snapshot is still a heuristic (depths
// move the instant after sampling), which the fallback path tolerates by
// counting a full sibling as FallbackRejects rather than retrying again.
func (s *Set) leastLoaded(skip int) int {
	var stack [16]int
	depths := stack[:0]
	if len(s.engines) > len(stack) {
		depths = make([]int, 0, len(s.engines))
	}
	for _, e := range s.engines {
		depths = append(depths, len(e.queue.ch))
	}
	best := -1
	for i, d := range depths {
		if i == skip {
			continue
		}
		if best < 0 || d < depths[best] {
			best = i
		}
	}
	if best < 0 {
		return skip
	}
	return best
}

// stealInto is the per-shard steal hook: drain up to half of the deepest
// sibling queue into batch. Both the victim's dispatcher and the thief
// receive from the same channel, which is safe — each request is
// delivered exactly once, to whichever loop wins it. The thief's
// runBatch partitions the stolen requests into identity bundles exactly
// as the victim's would have, so coalescing survives the theft and the
// fused results stay bit-identical to an unstolen run. Allocation-free
// in steady state (the caller reuses batch across polls).
func (s *Set) stealInto(self int, batch *[]*asyncReq) int {
	victim, depth := -1, 0
	for i, e := range s.engines {
		if i == self {
			continue
		}
		// Only victimize a shard whose dispatcher is stuck executing: an
		// idle sibling's dispatcher is already blocked receiving on its
		// own queue and will drain it immediately — racing it for a
		// freshly enqueued request adds no throughput and needlessly
		// moves the work off its home caches.
		if !e.queue.busy.Load() {
			continue
		}
		if d := len(e.queue.ch); d > depth {
			victim, depth = i, d
		}
	}
	if victim < 0 {
		return 0
	}
	want := (depth + 1) / 2
	q := &s.engines[victim].queue
	n := 0
	for n < want {
		select {
		case r, ok := <-q.ch:
			if !ok {
				return n
			}
			*batch = append(*batch, r)
			n++
		default:
			return n // victim drained (or its own dispatcher won the race)
		}
	}
	return n
}

// ShardStats is one shard's view in a SetStats: the shard's full engine
// stats plus set-level routing attribution.
type ShardStats struct {
	Shard  int    `json:"shard"`
	Routed uint64 `json:"routed"` // calls whose identity routed here
	Stats
}

// SetStats is a point-in-time view of the whole set: per-shard stats
// plus the cross-shard aggregate (counters summed, shapes merged by
// identity) so dashboards don't re-aggregate label sets client-side.
type SetStats struct {
	Shards          []ShardStats `json:"shards"`
	Fallbacks       uint64       `json:"fallbacks"`        // queue-full submissions redirected to a sibling
	FallbackRejects uint64       `json:"fallback_rejects"` // redirects that failed too (ErrQueueFull surfaced)
	Aggregate       Stats        `json:"aggregate"`
}

// Stats returns the current per-shard and aggregate counters.
func (s *Set) Stats() SetStats {
	out := SetStats{
		Shards:          make([]ShardStats, len(s.engines)),
		Fallbacks:       s.fallbacks.Load(),
		FallbackRejects: s.fallbackRejects.Load(),
	}
	perShape := make([][]obs.ShapeSnapshot, len(s.engines))
	perTenant := make([][]obs.TenantSnapshot, len(s.engines))
	for i, e := range s.engines {
		st := e.Stats()
		out.Shards[i] = ShardStats{Shard: i, Routed: s.routed[i].Load(), Stats: st}
		perShape[i] = st.Shapes
		perTenant[i] = st.Tenants
		if i == 0 {
			out.Aggregate = st
		} else {
			out.Aggregate.Add(st)
		}
	}
	out.Aggregate.Shapes = obs.AggregateShapes(perShape...)
	out.Aggregate.Tenants = obs.AggregateTenants(perTenant...)
	return out
}

// QueueStats returns the cross-shard aggregate of every shard's
// submission-queue counters — the cheap admission-control view of the
// whole set (no shape series or cache snapshots; see Engine.QueueStats).
func (s *Set) QueueStats() QueueStats {
	var agg QueueStats
	for i, e := range s.engines {
		if i == 0 {
			agg = e.queue.snapshot()
			continue
		}
		st := e.queue.snapshot()
		agg.Add(st)
	}
	return agg
}

// SetEDF toggles deadline-ordered dispatch on every shard; see
// Engine.SetEDF.
func (s *Set) SetEDF(on bool) {
	for _, e := range s.engines {
		e.SetEDF(on)
	}
}

// SetBatchWindow sets every shard's max-batch-window; see
// Engine.SetBatchWindow.
func (s *Set) SetBatchWindow(d time.Duration) {
	for _, e := range s.engines {
		e.SetBatchWindow(d)
	}
}

// ResetShapeStats resets every shard's windowed observability state; see
// Engine.ResetShapeStats.
func (s *Set) ResetShapeStats() {
	for _, e := range s.engines {
		e.ResetShapeStats()
	}
}

// SetTenants installs the per-tenant SLO objectives on every shard; see
// Engine.SetTenants. Each shard keeps its own series (a request records
// wherever it executed, including stolen work); TenantStats merges them.
func (s *Set) SetTenants(cfg map[string]obs.TenantObjective) {
	for _, e := range s.engines {
		e.SetTenants(cfg)
	}
}

// TenantStats returns the cross-shard aggregate of every shard's
// per-tenant SLO series (nil when accounting is disabled).
func (s *Set) TenantStats() []obs.TenantSnapshot {
	perTenant := make([][]obs.TenantSnapshot, len(s.engines))
	any := false
	for i, e := range s.engines {
		perTenant[i] = e.TenantStats()
		if perTenant[i] != nil {
			any = true
		}
	}
	if !any {
		return nil
	}
	return obs.AggregateTenants(perTenant...)
}

// RecordTenantShed accounts one admission-control shed for a tenant on
// the tenant's name-affine shard, so repeated sheds for one tenant stay
// on one series instead of smearing across the set.
func (s *Set) RecordTenantShed(name string) {
	if len(s.engines) == 0 {
		return
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	s.engines[h%uint64(len(s.engines))].RecordTenantShed(name)
}

// SetProfileLabels toggles pprof labeling on every shard.
func (s *Set) SetProfileLabels(on bool) {
	for _, e := range s.engines {
		e.SetProfileLabels(on)
	}
}

// Obs returns shard i's observability registry (trace hooks, spans).
func (s *Set) Obs(i int) *obs.Registry { return s.engines[i].Obs() }
