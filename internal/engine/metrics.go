// OpenMetrics export: a dependency-free text encoder over the engine's
// Stats and the per-shape observability registry, so a Prometheus (or any
// OpenMetrics-compatible) scraper can watch the serving engine without
// the process linking a metrics library. One scrape = one Stats snapshot
// rendered as families: engine-level counters and gauges (plan cache,
// pack cache, submission queue incl. the depth high-water mark and the
// queue-wait histogram, buffer pools, worker pool, pipeline) plus
// per-shape series labeled {op, dtype, mode, shape} with achieved-vs-
// ceiling GFLOPS — the paper's predicted-vs-achieved methodology as a
// live surface.

package engine

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"

	"iatf/internal/obs"
	"iatf/internal/vec"
)

// BuildInfo identifies the running module build — exported metrics dumps
// carry it so they are self-describing.
type BuildInfo struct {
	Module     string `json:"module"`
	Version    string `json:"version"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// SIMDBackend names the vector model the kernels execute on
	// (the portable 128-bit NEON emulation in this reproduction).
	SIMDBackend string `json:"simd_backend"`
}

// Build returns the running build's identity.
func Build() BuildInfo {
	bi := BuildInfo{
		Module:      "iatf",
		Version:     "(devel)",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		SIMDBackend: fmt.Sprintf("portable-neon%d", vec.Width*8),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Path != "" {
			bi.Module = info.Main.Path
		}
		if info.Main.Version != "" {
			bi.Version = info.Main.Version
		}
	}
	return bi
}

// omWriter accumulates OpenMetrics text, remembering the first write
// error so call sites stay linear.
type omWriter struct {
	w   io.Writer
	err error
}

func (o *omWriter) printf(format string, args ...any) {
	if o.err != nil {
		return
	}
	_, o.err = fmt.Fprintf(o.w, format, args...)
}

// family emits the TYPE line of a metric family.
func (o *omWriter) family(name, kind string) { o.printf("# TYPE %s %s\n", name, kind) }

// counter emits one counter sample; per OpenMetrics the sample name is
// the family name plus the _total suffix.
func (o *omWriter) counter(name, labels string, v uint64) {
	o.printf("%s_total%s %d\n", name, labels, v)
}

func (o *omWriter) gauge(name, labels string, v float64) {
	o.printf("%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// counters emits a family of single-sample counter metrics under a
// shared prefix.
func (o *omWriter) counters(prefix string, samples []struct {
	name string
	v    uint64
}) {
	for _, s := range samples {
		o.family(prefix+s.name, "counter")
		o.counter(prefix+s.name, "", s.v)
	}
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelSet renders a {k="v",...} label set from alternating key/value
// pairs.
func labelSet(kv ...string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// histogram emits an obs.HistSnapshot as a cumulative OpenMetrics
// histogram in seconds (the snapshot's buckets are log2 nanoseconds).
func (o *omWriter) histogram(name string, h obs.HistSnapshot) {
	o.family(name, "histogram")
	cum := uint64(0)
	for _, b := range h.Buckets {
		cum += b.Count
		le := strconv.FormatFloat(float64(b.UpperNs)/1e9, 'g', -1, 64)
		o.printf("%s_bucket{le=\"%s\"} %d\n", name, le, cum)
	}
	o.printf("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	o.printf("%s_sum %s\n", name, strconv.FormatFloat(float64(h.SumNs)/1e9, 'g', -1, 64))
	o.printf("%s_count %d\n", name, h.Count)
}

// WriteOpenMetrics renders one scrape of the engine's state as
// OpenMetrics text (terminated by the mandatory # EOF).
func (e *Engine) WriteOpenMetrics(w io.Writer) error {
	st := e.Stats()
	o := &omWriter{w: w}

	bi := Build()
	o.family("iatf_build_info", "gauge")
	o.gauge("iatf_build_info", labelSet(
		"module", bi.Module, "version", bi.Version,
		"go_version", bi.GoVersion, "simd", bi.SIMDBackend), 1)
	o.family("iatf_gomaxprocs", "gauge")
	o.gauge("iatf_gomaxprocs", "", float64(bi.GOMAXPROCS))

	o.counters("iatf_plan_cache_", []struct {
		name string
		v    uint64
	}{
		{"hits", st.PlanHits}, {"misses", st.PlanMisses},
		{"shared", st.PlanShared}, {"evictions", st.PlanEvictions},
	})
	o.family("iatf_plan_cache_entries", "gauge")
	o.gauge("iatf_plan_cache_entries", "", float64(st.PlanEntries))

	o.counters("iatf_pack_cache_", []struct {
		name string
		v    uint64
	}{
		{"hits", st.PackCache.Hits}, {"builds", st.PackCache.Builds},
		{"evictions", st.PackCache.Evictions}, {"stale", st.PackCache.Stale},
	})
	o.family("iatf_pack_cache_entries", "gauge")
	o.gauge("iatf_pack_cache_entries", "", float64(st.PackCache.Entries))

	o.counters("iatf_queue_", []struct {
		name string
		v    uint64
	}{
		{"submitted", st.Queue.Submitted}, {"inline", st.Queue.Inline},
		{"dispatches", st.Queue.Dispatches}, {"coalesced", st.Queue.Coalesced},
		{"cancelled", st.Queue.Cancelled}, {"rejected", st.Queue.Rejected},
	})
	for _, g := range []struct {
		name string
		v    float64
	}{
		{"iatf_queue_depth", float64(st.Queue.Depth)},
		{"iatf_queue_capacity", float64(st.Queue.Capacity)},
		{"iatf_queue_depth_high_water", float64(st.Queue.DepthHighWater)},
		{"iatf_queue_max_fused", float64(st.Queue.MaxFused)},
	} {
		o.family(g.name, "gauge")
		o.gauge(g.name, "", g.v)
	}
	o.histogram("iatf_queue_wait_seconds", st.Queue.Wait)

	o.counters("iatf_bufpool_", []struct {
		name string
		v    uint64
	}{
		{"gets", st.Buffers.Gets}, {"reuses", st.Buffers.Reuses},
		{"allocs", st.Buffers.Allocs}, {"puts", st.Buffers.Puts},
		{"oversize", st.Buffers.Oversize}, {"double_puts", st.Buffers.DoublePuts},
	})
	o.family("iatf_bufpool_in_use", "gauge")
	o.gauge("iatf_bufpool_in_use", "", float64(st.Buffers.InUse))

	o.counters("iatf_sched_", []struct {
		name string
		v    uint64
	}{
		{"resizes", st.Sched.Resizes}, {"parallel_calls", st.Sched.ParallelCalls},
		{"inline_calls", st.Sched.InlineCalls}, {"chunks", st.Sched.Chunks},
		{"pool_shares", st.Sched.PoolShares}, {"overflow_runs", st.Sched.OverflowRuns},
	})
	o.family("iatf_sched_workers", "gauge")
	o.gauge("iatf_sched_workers", "", float64(st.Sched.Workers))

	o.counters("iatf_pipeline_", []struct {
		name string
		v    uint64
	}{
		{"chunks", st.Pipeline.Chunks}, {"stalls", st.Pipeline.Stalls},
		{"fallbacks", st.Pipeline.Fallbacks},
	})
	o.family("iatf_pipeline_packers", "gauge")
	o.gauge("iatf_pipeline_packers", "", float64(st.Pipeline.Packers))

	// Per-shape series: counters and the achieved-vs-ceiling view, one
	// sample per shape under shared families.
	shapeCounters := []struct {
		name string
		get  func(i int) uint64
	}{
		{"iatf_shape_calls", func(i int) uint64 { return st.Shapes[i].Calls }},
		{"iatf_shape_errors", func(i int) uint64 { return st.Shapes[i].Errors }},
		{"iatf_shape_plan_hits", func(i int) uint64 { return st.Shapes[i].PlanHits }},
		{"iatf_shape_plan_misses", func(i int) uint64 { return st.Shapes[i].PlanMisses }},
		{"iatf_shape_plan_shared", func(i int) uint64 { return st.Shapes[i].PlanShared }},
		{"iatf_shape_prepack_hits", func(i int) uint64 { return st.Shapes[i].PrepackHits }},
		{"iatf_shape_prepack_builds", func(i int) uint64 { return st.Shapes[i].PrepackBuilds }},
	}
	labels := make([]string, len(st.Shapes))
	for i := range st.Shapes {
		s := &st.Shapes[i]
		shape := fmt.Sprintf("%dx%d", s.M, s.N)
		if s.K > 0 {
			shape += fmt.Sprintf("x%d", s.K)
		}
		labels[i] = labelSet("op", s.Op, "dtype", s.DType, "mode", s.Mode, "shape", shape)
	}
	for _, c := range shapeCounters {
		o.family(c.name, "counter")
		for i := range st.Shapes {
			o.counter(c.name, labels[i], c.get(i))
		}
	}
	shapeGauges := []struct {
		name string
		get  func(i int) float64
	}{
		{"iatf_shape_latency_p50_seconds", func(i int) float64 { return st.Shapes[i].P50.Seconds() }},
		{"iatf_shape_latency_p99_seconds", func(i int) float64 { return st.Shapes[i].P99.Seconds() }},
		{"iatf_shape_avg_gflops", func(i int) float64 { return st.Shapes[i].AvgGFLOPS }},
		{"iatf_shape_best_gflops", func(i int) float64 { return st.Shapes[i].BestGFLOPS }},
		{"iatf_shape_ceiling_gflops", func(i int) float64 { return st.Shapes[i].CeilingGFLOPS }},
		{"iatf_shape_workers", func(i int) float64 { return float64(st.Shapes[i].Workers) }},
		{"iatf_shape_groups_per_batch", func(i int) float64 { return float64(st.Shapes[i].GroupsPerBatch) }},
	}
	for _, g := range shapeGauges {
		o.family(g.name, "gauge")
		for i := range st.Shapes {
			o.gauge(g.name, labels[i], g.get(i))
		}
	}

	o.printf("# EOF\n")
	return o.err
}

// MetricsHandler returns an http.Handler serving WriteOpenMetrics with
// the OpenMetrics content type — mountable at /metrics.
func (e *Engine) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := e.WriteOpenMetrics(w); err != nil {
			// Headers are already out; nothing recoverable mid-stream.
			return
		}
	})
}
