// OpenMetrics export: a dependency-free text encoder over the engine's
// Stats and the per-shape observability registry, so a Prometheus (or any
// OpenMetrics-compatible) scraper can watch the serving engine without
// the process linking a metrics library. One scrape = one Stats snapshot
// rendered as families: engine-level counters and gauges (plan cache,
// pack cache, submission queue incl. the depth high-water mark and the
// queue-wait histogram, buffer pools, worker pool, pipeline) plus
// per-shape series labeled {op, dtype, mode, shape} with achieved-vs-
// ceiling GFLOPS — the paper's predicted-vs-achieved methodology as a
// live surface.

package engine

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"

	"iatf/internal/obs"
	"iatf/internal/vec"
)

// BuildInfo identifies the running module build — exported metrics dumps
// carry it so they are self-describing.
type BuildInfo struct {
	Module     string `json:"module"`
	Version    string `json:"version"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// SIMDBackend names the vector model the kernels execute on
	// (the portable 128-bit NEON emulation in this reproduction).
	SIMDBackend string `json:"simd_backend"`
}

// Build returns the running build's identity.
func Build() BuildInfo {
	bi := BuildInfo{
		Module:      "iatf",
		Version:     "(devel)",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		SIMDBackend: fmt.Sprintf("portable-neon%d", vec.Width*8),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Path != "" {
			bi.Module = info.Main.Path
		}
		if info.Main.Version != "" {
			bi.Version = info.Main.Version
		}
	}
	return bi
}

// omWriter accumulates OpenMetrics text, remembering the first write
// error so call sites stay linear.
type omWriter struct {
	w   io.Writer
	err error
}

func (o *omWriter) printf(format string, args ...any) {
	if o.err != nil {
		return
	}
	_, o.err = fmt.Fprintf(o.w, format, args...)
}

// family emits the TYPE line of a metric family.
func (o *omWriter) family(name, kind string) { o.printf("# TYPE %s %s\n", name, kind) }

// counter emits one counter sample; per OpenMetrics the sample name is
// the family name plus the _total suffix.
func (o *omWriter) counter(name, labels string, v uint64) {
	o.printf("%s_total%s %d\n", name, labels, v)
}

func (o *omWriter) gauge(name, labels string, v float64) {
	o.printf("%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// counters emits a family of single-sample counter metrics under a
// shared prefix.
func (o *omWriter) counters(prefix string, samples []struct {
	name string
	v    uint64
}) {
	for _, s := range samples {
		o.family(prefix+s.name, "counter")
		o.counter(prefix+s.name, "", s.v)
	}
}

// metricsEntry is one stats source of a multi-engine scrape: shard is
// the shard label value ("" = unlabeled — a solo engine, or the
// aggregate samples of an EngineSet scrape).
type metricsEntry struct {
	shard string
	st    Stats
}

// lbl renders the entry's engine-level label set ("" or {shard="k"}).
func (m metricsEntry) lbl() string {
	if m.shard == "" {
		return ""
	}
	return labelSet("shard", m.shard)
}

// frag renders the entry's bare label fragment ("" or shard="k").
func (m metricsEntry) frag() string {
	if m.shard == "" {
		return ""
	}
	return labelFrag("shard", m.shard)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelFrag renders a bare k="v",... fragment from alternating key/value
// pairs (no braces — composable into larger label sets).
func labelFrag(kv ...string) string {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(kv[i+1]))
		b.WriteString(`"`)
	}
	return b.String()
}

// labelSet renders a {k="v",...} label set from alternating key/value
// pairs.
func labelSet(kv ...string) string {
	return "{" + labelFrag(kv...) + "}"
}

// histogram emits one labeled obs.HistSnapshot sample set of a
// cumulative OpenMetrics histogram in seconds (the snapshot's buckets
// are log2 nanoseconds). extra is a comma-joined label fragment
// (`shard="0"`) merged into each bucket's le label; the TYPE line is the
// caller's job so several labeled sample sets can share one family.
func (o *omWriter) histogram(name, extra string, h obs.HistSnapshot) {
	sep := ""
	if extra != "" {
		sep = extra + ","
	}
	cum := uint64(0)
	for _, b := range h.Buckets {
		cum += b.Count
		le := strconv.FormatFloat(float64(b.UpperNs)/1e9, 'g', -1, 64)
		o.printf("%s_bucket{%sle=\"%s\"} %d\n", name, sep, le, cum)
	}
	o.printf("%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, h.Count)
	if extra != "" {
		extra = "{" + extra + "}"
	}
	o.printf("%s_sum%s %s\n", name, extra, strconv.FormatFloat(float64(h.SumNs)/1e9, 'g', -1, 64))
	o.printf("%s_count%s %d\n", name, extra, h.Count)
}

// WriteOpenMetrics renders one scrape of the engine's state as
// OpenMetrics text (terminated by the mandatory # EOF).
func (e *Engine) WriteOpenMetrics(w io.Writer) error {
	return writeOpenMetrics(w, []metricsEntry{{st: e.Stats()}}, nil)
}

// WriteOpenMetrics renders one scrape of the whole set: every family
// carries the aggregate as unlabeled samples plus one shard="k" sample
// per shard, so dashboards graph either view from the same scrape
// without client-side summing. TYPE lines are emitted once per family
// (a valid exposition — concatenating per-engine dumps would not be).
func (s *Set) WriteOpenMetrics(w io.Writer) error {
	st := s.Stats()
	entries := make([]metricsEntry, 0, len(st.Shards)+1)
	entries = append(entries, metricsEntry{st: st.Aggregate})
	for i := range st.Shards {
		entries = append(entries, metricsEntry{shard: strconv.Itoa(st.Shards[i].Shard), st: st.Shards[i].Stats})
	}
	return writeOpenMetrics(w, entries, &st)
}

// writeOpenMetrics is the shared encoder: one TYPE line per family, one
// sample per entry (labeled with the entry's shard when set). set, when
// non-nil, adds the set-level routing/stealing families.
func writeOpenMetrics(w io.Writer, entries []metricsEntry, set *SetStats) error {
	o := &omWriter{w: w}

	bi := Build()
	o.family("iatf_build_info", "gauge")
	o.gauge("iatf_build_info", labelSet(
		"module", bi.Module, "version", bi.Version,
		"go_version", bi.GoVersion, "simd", bi.SIMDBackend), 1)
	o.family("iatf_gomaxprocs", "gauge")
	o.gauge("iatf_gomaxprocs", "", float64(bi.GOMAXPROCS))

	counterFams := []struct {
		name string
		get  func(st *Stats) uint64
	}{
		{"iatf_plan_cache_hits", func(st *Stats) uint64 { return st.PlanHits }},
		{"iatf_plan_cache_misses", func(st *Stats) uint64 { return st.PlanMisses }},
		{"iatf_plan_cache_shared", func(st *Stats) uint64 { return st.PlanShared }},
		{"iatf_plan_cache_evictions", func(st *Stats) uint64 { return st.PlanEvictions }},
		{"iatf_plan_hydrated", func(st *Stats) uint64 { return st.PlanHydrated }},
		{"iatf_store_loads", func(st *Stats) uint64 { return st.Store.Loads }},
		{"iatf_store_load_mismatches", func(st *Stats) uint64 { return st.Store.LoadMismatches }},
		{"iatf_store_load_errors", func(st *Stats) uint64 { return st.Store.LoadErrors }},
		{"iatf_store_saves", func(st *Stats) uint64 { return st.Store.Saves }},
		{"iatf_store_save_errors", func(st *Stats) uint64 { return st.Store.SaveErrors }},
		{"iatf_store_kernels_imported", func(st *Stats) uint64 { return st.Store.KernelsImported }},
		{"iatf_pack_cache_hits", func(st *Stats) uint64 { return st.PackCache.Hits }},
		{"iatf_pack_cache_builds", func(st *Stats) uint64 { return st.PackCache.Builds }},
		{"iatf_pack_cache_evictions", func(st *Stats) uint64 { return st.PackCache.Evictions }},
		{"iatf_pack_cache_stale", func(st *Stats) uint64 { return st.PackCache.Stale }},
		{"iatf_queue_submitted", func(st *Stats) uint64 { return st.Queue.Submitted }},
		{"iatf_queue_inline", func(st *Stats) uint64 { return st.Queue.Inline }},
		{"iatf_queue_dispatches", func(st *Stats) uint64 { return st.Queue.Dispatches }},
		{"iatf_queue_coalesced", func(st *Stats) uint64 { return st.Queue.Coalesced }},
		{"iatf_queue_cancelled", func(st *Stats) uint64 { return st.Queue.Cancelled }},
		{"iatf_queue_rejected", func(st *Stats) uint64 { return st.Queue.Rejected }},
		{"iatf_queue_stolen_batches", func(st *Stats) uint64 { return st.Queue.StolenBatches }},
		{"iatf_queue_stolen_requests", func(st *Stats) uint64 { return st.Queue.StolenReqs }},
		{"iatf_chain_runs", func(st *Stats) uint64 { return st.Chain.Runs }},
		{"iatf_chain_plan_hits", func(st *Stats) uint64 { return st.Chain.PlanHits }},
		{"iatf_chain_plan_misses", func(st *Stats) uint64 { return st.Chain.PlanMisses }},
		{"iatf_chain_scatter_elided", func(st *Stats) uint64 { return st.Chain.ScatterElided }},
		{"iatf_chain_pack_elided", func(st *Stats) uint64 { return st.Chain.PackElided }},
		{"iatf_bufpool_gets", func(st *Stats) uint64 { return st.Buffers.Gets }},
		{"iatf_bufpool_reuses", func(st *Stats) uint64 { return st.Buffers.Reuses }},
		{"iatf_bufpool_allocs", func(st *Stats) uint64 { return st.Buffers.Allocs }},
		{"iatf_bufpool_puts", func(st *Stats) uint64 { return st.Buffers.Puts }},
		{"iatf_bufpool_oversize", func(st *Stats) uint64 { return st.Buffers.Oversize }},
		{"iatf_bufpool_double_puts", func(st *Stats) uint64 { return st.Buffers.DoublePuts }},
		{"iatf_sched_resizes", func(st *Stats) uint64 { return st.Sched.Resizes }},
		{"iatf_sched_parallel_calls", func(st *Stats) uint64 { return st.Sched.ParallelCalls }},
		{"iatf_sched_inline_calls", func(st *Stats) uint64 { return st.Sched.InlineCalls }},
		{"iatf_sched_chunks", func(st *Stats) uint64 { return st.Sched.Chunks }},
		{"iatf_sched_pool_shares", func(st *Stats) uint64 { return st.Sched.PoolShares }},
		{"iatf_sched_overflow_runs", func(st *Stats) uint64 { return st.Sched.OverflowRuns }},
	}
	for _, f := range counterFams {
		o.family(f.name, "counter")
		for i := range entries {
			o.counter(f.name, entries[i].lbl(), f.get(&entries[i].st))
		}
	}

	gaugeFams := []struct {
		name string
		get  func(st *Stats) float64
	}{
		{"iatf_plan_cache_entries", func(st *Stats) float64 { return float64(st.PlanEntries) }},
		{"iatf_pack_cache_entries", func(st *Stats) float64 { return float64(st.PackCache.Entries) }},
		{"iatf_chain_plan_entries", func(st *Stats) float64 { return float64(st.Chain.PlanEntries) }},
		{"iatf_queue_depth", func(st *Stats) float64 { return float64(st.Queue.Depth) }},
		{"iatf_queue_capacity", func(st *Stats) float64 { return float64(st.Queue.Capacity) }},
		{"iatf_queue_depth_high_water", func(st *Stats) float64 { return float64(st.Queue.DepthHighWater) }},
		{"iatf_queue_max_fused", func(st *Stats) float64 { return float64(st.Queue.MaxFused) }},
		{"iatf_queue_edf", func(st *Stats) float64 {
			if st.Queue.EDF {
				return 1
			}
			return 0
		}},
		{"iatf_queue_batch_window_seconds", func(st *Stats) float64 { return st.Queue.Window.Seconds() }},
		{"iatf_bufpool_in_use", func(st *Stats) float64 { return float64(st.Buffers.InUse) }},
		{"iatf_sched_workers", func(st *Stats) float64 { return float64(st.Sched.Workers) }},
	}
	for _, f := range gaugeFams {
		o.family(f.name, "gauge")
		for i := range entries {
			o.gauge(f.name, entries[i].lbl(), f.get(&entries[i].st))
		}
	}

	o.family("iatf_queue_wait_seconds", "histogram")
	for i := range entries {
		o.histogram("iatf_queue_wait_seconds", entries[i].frag(), entries[i].st.Queue.Wait)
	}

	// The streaming pipeline is process-wide state, identical in every
	// entry: one unlabeled sample from the first.
	pipe := entries[0].st.Pipeline
	o.counters("iatf_pipeline_", []struct {
		name string
		v    uint64
	}{
		{"chunks", pipe.Chunks}, {"stalls", pipe.Stalls},
		{"fallbacks", pipe.Fallbacks},
	})
	o.family("iatf_pipeline_packers", "gauge")
	o.gauge("iatf_pipeline_packers", "", float64(pipe.Packers))

	if set != nil {
		o.family("iatf_set_shards", "gauge")
		o.gauge("iatf_set_shards", "", float64(len(set.Shards)))
		o.family("iatf_set_fallbacks", "counter")
		o.counter("iatf_set_fallbacks", "", set.Fallbacks)
		o.family("iatf_set_fallback_rejects", "counter")
		o.counter("iatf_set_fallback_rejects", "", set.FallbackRejects)
		o.family("iatf_set_routed", "counter")
		for i := range set.Shards {
			o.counter("iatf_set_routed", labelSet("shard", strconv.Itoa(set.Shards[i].Shard)), set.Shards[i].Routed)
		}
	}

	// Per-shape series: counters and the achieved-vs-ceiling view, one
	// sample per (entry, shape) under shared families. Shard-labeled
	// entries merge shard into the shape label set; the aggregate's
	// merged shapes stay unlabeled.
	type shapeRef struct {
		labels string
		snap   *obs.ShapeSnapshot
	}
	var shapes []shapeRef
	for ei := range entries {
		en := &entries[ei]
		for si := range en.st.Shapes {
			sn := &en.st.Shapes[si]
			shape := fmt.Sprintf("%dx%d", sn.M, sn.N)
			if sn.K > 0 {
				shape += fmt.Sprintf("x%d", sn.K)
			}
			frag := labelFrag("op", sn.Op, "dtype", sn.DType, "mode", sn.Mode, "shape", shape)
			if ef := en.frag(); ef != "" {
				frag = ef + "," + frag
			}
			shapes = append(shapes, shapeRef{labels: "{" + frag + "}", snap: sn})
		}
	}
	shapeCounters := []struct {
		name string
		get  func(s *obs.ShapeSnapshot) uint64
	}{
		{"iatf_shape_calls", func(s *obs.ShapeSnapshot) uint64 { return s.Calls }},
		{"iatf_shape_errors", func(s *obs.ShapeSnapshot) uint64 { return s.Errors }},
		{"iatf_shape_plan_hits", func(s *obs.ShapeSnapshot) uint64 { return s.PlanHits }},
		{"iatf_shape_plan_misses", func(s *obs.ShapeSnapshot) uint64 { return s.PlanMisses }},
		{"iatf_shape_plan_shared", func(s *obs.ShapeSnapshot) uint64 { return s.PlanShared }},
		{"iatf_shape_prepack_hits", func(s *obs.ShapeSnapshot) uint64 { return s.PrepackHits }},
		{"iatf_shape_prepack_builds", func(s *obs.ShapeSnapshot) uint64 { return s.PrepackBuilds }},
	}
	for _, c := range shapeCounters {
		o.family(c.name, "counter")
		for _, sr := range shapes {
			o.counter(c.name, sr.labels, c.get(sr.snap))
		}
	}
	shapeGauges := []struct {
		name string
		get  func(s *obs.ShapeSnapshot) float64
	}{
		{"iatf_shape_latency_p50_seconds", func(s *obs.ShapeSnapshot) float64 { return s.P50.Seconds() }},
		{"iatf_shape_latency_p99_seconds", func(s *obs.ShapeSnapshot) float64 { return s.P99.Seconds() }},
		{"iatf_shape_avg_gflops", func(s *obs.ShapeSnapshot) float64 { return s.AvgGFLOPS }},
		{"iatf_shape_best_gflops", func(s *obs.ShapeSnapshot) float64 { return s.BestGFLOPS }},
		{"iatf_shape_ceiling_gflops", func(s *obs.ShapeSnapshot) float64 { return s.CeilingGFLOPS }},
		{"iatf_shape_workers", func(s *obs.ShapeSnapshot) float64 { return float64(s.Workers) }},
		{"iatf_shape_groups_per_batch", func(s *obs.ShapeSnapshot) float64 { return float64(s.GroupsPerBatch) }},
	}
	for _, g := range shapeGauges {
		o.family(g.name, "gauge")
		for _, sr := range shapes {
			o.gauge(g.name, sr.labels, g.get(sr.snap))
		}
	}

	// Per-tenant SLO series, labeled {tenant} (plus shard on shard
	// entries). Families are emitted only when some entry carries tenant
	// accounting, so scrapes of engines without tenants stay unchanged.
	type tenantRef struct {
		labels string
		frag   string
		snap   *obs.TenantSnapshot
	}
	var tenants []tenantRef
	for ei := range entries {
		en := &entries[ei]
		for ti := range en.st.Tenants {
			tn := &en.st.Tenants[ti]
			frag := labelFrag("tenant", tn.Name)
			if ef := en.frag(); ef != "" {
				frag = ef + "," + frag
			}
			tenants = append(tenants, tenantRef{labels: "{" + frag + "}", frag: frag, snap: tn})
		}
	}
	if len(tenants) > 0 {
		tenantCounters := []struct {
			name string
			get  func(t *obs.TenantSnapshot) uint64
		}{
			{"iatf_tenant_requests", func(t *obs.TenantSnapshot) uint64 { return t.Requests }},
			{"iatf_tenant_errors", func(t *obs.TenantSnapshot) uint64 { return t.Errors }},
			{"iatf_tenant_sheds", func(t *obs.TenantSnapshot) uint64 { return t.Sheds }},
			{"iatf_tenant_deadline_hits", func(t *obs.TenantSnapshot) uint64 { return t.DeadlineHits }},
			{"iatf_tenant_deadline_misses", func(t *obs.TenantSnapshot) uint64 { return t.DeadlineMisses }},
		}
		for _, c := range tenantCounters {
			o.family(c.name, "counter")
			for _, tr := range tenants {
				o.counter(c.name, tr.labels, c.get(tr.snap))
			}
		}
		tenantGauges := []struct {
			name string
			get  func(t *obs.TenantSnapshot) float64
		}{
			{"iatf_tenant_class", func(t *obs.TenantSnapshot) float64 { return float64(t.Class) }},
			{"iatf_tenant_slo_objective_seconds", func(t *obs.TenantSnapshot) float64 { return t.Objective.Seconds() }},
			{"iatf_tenant_slo_target", func(t *obs.TenantSnapshot) float64 { return t.Target }},
			{"iatf_tenant_slo_burn_rate", func(t *obs.TenantSnapshot) float64 { return t.BurnRate }},
			{"iatf_tenant_window_requests", func(t *obs.TenantSnapshot) float64 { return float64(t.WindowRequests) }},
			{"iatf_tenant_window_bad", func(t *obs.TenantSnapshot) float64 { return float64(t.WindowBad) }},
		}
		for _, g := range tenantGauges {
			o.family(g.name, "gauge")
			for _, tr := range tenants {
				o.gauge(g.name, tr.labels, g.get(tr.snap))
			}
		}
		o.family("iatf_tenant_latency_seconds", "histogram")
		for _, tr := range tenants {
			o.histogram("iatf_tenant_latency_seconds", tr.frag, tr.snap.Latency)
		}
	}

	o.printf("# EOF\n")
	return o.err
}

// MetricsHandler returns an http.Handler serving WriteOpenMetrics with
// the OpenMetrics content type — mountable at /metrics.
func (e *Engine) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := e.WriteOpenMetrics(w); err != nil {
			// Headers are already out; nothing recoverable mid-stream.
			return
		}
	})
}

// MetricsHandler returns an http.Handler serving the set's per-shard +
// aggregate WriteOpenMetrics — mountable at /metrics.
func (s *Set) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := s.WriteOpenMetrics(w); err != nil {
			return
		}
	})
}
