package engine

import (
	"sync"
	"sync/atomic"

	"iatf/internal/bufpool"
	"iatf/internal/vec"
)

// Packed-operand cache: operands that opt in via Prepack carry a
// process-unique (id, generation) pair, and the engine memoizes their
// packed images per (operand identity + generation, plan key, operand
// role). npackA/npackB/npackTri then run once per (operand, shape) and
// every later call jumps straight to the kernel loop.
//
// Entries are refcounted: the cache holds one reference, every call that
// is currently executing against the image holds another, so eviction
// (bounded FIFO) and invalidation (generation bump → stale entries
// purged on the next miss) never free storage a kernel is still
// reading. Backing buffers come from bufpool and return there when the
// last reference drops. Concurrent cold misses on one key are
// single-flighted through the entry's done channel, like the plan cache.

// packRole names which operand of the plan an image packs.
type packRole uint8

const (
	roleA packRole = iota
	roleB
	roleTri
)

// packKey identifies one cached packed image. The plan key carries the
// op kind, so the TRSM (reciprocal-diagonal) and TRMM (true-diagonal)
// triangle images of one operand never collide.
type packKey struct {
	id, gen uint64
	plan    planKey
	role    packRole
}

// packEntry is one cached packed image. refs counts the cache's own
// reference plus every in-flight call using the image; the backing
// buffer returns to bufpool when refs hits zero.
type packEntry struct {
	refs atomic.Int64
	done chan struct{} // closed when the build finishes (single-flight)
	err  error
	data any    // []E packed image, valid when err == nil
	put  func() // returns the backing buffer to bufpool
}

const packCacheCap = 64

type packCache struct {
	mu sync.Mutex
	m  map[packKey]*packEntry
	// order is the FIFO insertion record behind cap eviction. It may
	// contain already-purged keys (eviction skips them); buildPacked
	// compacts it when purges let it drift far past the live set.
	order []packKey

	hits, builds, evictions, stale uint64
}

// PackCacheStats is a snapshot of the packed-operand cache counters.
type PackCacheStats struct {
	Hits      uint64 // calls served from a cached packed image
	Builds    uint64 // cold misses that packed and inserted an image
	Evictions uint64 // entries dropped by the FIFO bound
	Stale     uint64 // entries purged because the operand's generation moved
	Entries   int
}

// Add accumulates another cache's counters into s (EngineSet aggregate).
func (s *PackCacheStats) Add(o PackCacheStats) {
	s.Hits += o.Hits
	s.Builds += o.Builds
	s.Evictions += o.Evictions
	s.Stale += o.Stale
	s.Entries += o.Entries
}

func (pc *packCache) snapshot() PackCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PackCacheStats{
		Hits: pc.hits, Builds: pc.builds,
		Evictions: pc.evictions, Stale: pc.stale,
		Entries: len(pc.m),
	}
}

// release drops one reference; the last one returns the buffer.
func (pc *packCache) release(ent *packEntry) {
	if ent.refs.Add(-1) == 0 && ent.put != nil {
		ent.put()
	}
}

// removeLocked unlinks an entry and drops the cache's reference.
// Callers hold pc.mu.
func (pc *packCache) removeLocked(k packKey, ent *packEntry) {
	delete(pc.m, k)
	pc.release(ent)
}

// lookupPacked is the warm fast path: it takes a reference on a cached
// image without evaluating any build closure, so a hit costs one mutex
// round and zero allocations. ok is false on miss — the caller then
// goes through buildPacked.
func lookupPacked[E vec.Float](e *Engine, key packKey) (ent *packEntry, data []E, ok bool, err error) {
	pc := &e.packs
	pc.mu.Lock()
	ent, ok = pc.m[key]
	if !ok {
		pc.mu.Unlock()
		return nil, nil, false, nil
	}
	ent.refs.Add(1)
	pc.hits++
	pc.mu.Unlock()
	<-ent.done
	if ent.err != nil {
		pc.release(ent)
		return nil, nil, true, ent.err
	}
	return ent, ent.data.([]E), true, nil
}

// buildPacked resolves a miss: it purges stale generations of the same
// (operand, plan, role), reserves an entry, packs the image outside the
// lock and publishes it. A concurrent caller that raced the reservation
// waits on the winner's entry instead of building twice.
func buildPacked[E vec.Float](e *Engine, key packKey, length int, build func([]E) error) (*packEntry, []E, error) {
	pc := &e.packs
	pc.mu.Lock()
	if ent, ok := pc.m[key]; ok {
		// Lost the race to another builder: behave like a hit.
		ent.refs.Add(1)
		pc.hits++
		pc.mu.Unlock()
		<-ent.done
		if ent.err != nil {
			pc.release(ent)
			return nil, nil, ent.err
		}
		return ent, ent.data.([]E), nil
	}
	for k, old := range pc.m {
		if k.id == key.id && k.role == key.role && k.plan == key.plan && k.gen != key.gen {
			pc.removeLocked(k, old)
			pc.stale++
		}
	}
	// Stale purges and error-path removals unlink entries from pc.m but
	// leave their keys in pc.order (only cap eviction pops the front), so
	// under generation churn — a chained solver invalidating its operands
	// every iteration — order grows without bound while the map stays
	// small. Compact it when it has drifted far past the live set, keeping
	// one occurrence per live key (a key can appear twice after an
	// error-path removal and re-insert; keeping both would let a later cap
	// eviction drop the live re-inserted entry early).
	if len(pc.order) > 2*len(pc.m)+packCacheCap {
		seen := make(map[packKey]struct{}, len(pc.m))
		live := pc.order[:0]
		for _, k := range pc.order {
			if _, dup := seen[k]; dup {
				continue
			}
			if _, ok := pc.m[k]; ok {
				seen[k] = struct{}{}
				live = append(live, k)
			}
		}
		pc.order = live
	}
	for len(pc.m) >= packCacheCap {
		k := pc.order[0]
		pc.order = pc.order[1:]
		if victim, ok := pc.m[k]; ok {
			pc.removeLocked(k, victim)
			pc.evictions++
		}
	}
	ent := &packEntry{done: make(chan struct{})}
	ent.refs.Store(2) // the cache's reference + this caller's
	pc.m[key] = ent
	pc.order = append(pc.order, key)
	pc.builds++
	pc.mu.Unlock()

	buf := bufpool.Get[E](e.rt.Bufs, length)
	data := buf.Slice()[:length]
	pool := e.rt.Bufs
	ent.put = func() { bufpool.Put(pool, buf) }
	ent.err = build(data)
	if ent.err == nil {
		ent.data = data
	}
	close(ent.done)
	if ent.err != nil {
		pc.mu.Lock()
		if cur, ok := pc.m[key]; ok && cur == ent {
			pc.removeLocked(key, ent)
		}
		pc.mu.Unlock()
		pc.release(ent)
		return nil, nil, ent.err
	}
	return ent, data, nil
}

// acquirePacked combines the fast and slow paths. hit reports whether
// the image came from cache (for the per-shape prepack counters).
func acquirePacked[E vec.Float](e *Engine, key packKey, length int, build func([]E) error) (ent *packEntry, data []E, hit bool, err error) {
	if ent, data, ok, err := lookupPacked[E](e, key); ok {
		return ent, data, true, err
	}
	ent, data, err = buildPacked(e, key, length, build)
	return ent, data, false, err
}
