package engine

import (
	"errors"
	"sync"
	"testing"

	"iatf/internal/core"
	"iatf/internal/vec"
)

func testKey(id, gen uint64, m int) packKey {
	return packKey{id: id, gen: gen, role: roleA,
		plan: planKey{kind: OpGEMM, dt: vec.S, m: m, n: m, k: m}}
}

// The cache is bounded: inserting more distinct keys than the capacity
// evicts the oldest entries instead of growing without limit.
func TestPackCacheEvictionBound(t *testing.T) {
	e := New(core.DefaultTuning())
	const n = packCacheCap + 16
	for id := uint64(1); id <= n; id++ {
		ent, data, hit, err := acquirePacked(e, testKey(id, 1, 8), 32, func(dst []float32) error {
			for i := range dst {
				dst[i] = float32(id)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("id %d: unexpected hit on first insertion", id)
		}
		if data[0] != float32(id) {
			t.Fatalf("id %d: wrong image %v", id, data[0])
		}
		e.packs.release(ent)
	}
	s := e.packs.snapshot()
	if s.Entries > packCacheCap {
		t.Fatalf("cache grew past its bound: %d entries, cap %d", s.Entries, packCacheCap)
	}
	if want := uint64(n - packCacheCap); s.Evictions != want {
		t.Fatalf("evictions = %d, want %d", s.Evictions, want)
	}
	if s.Builds != n {
		t.Fatalf("builds = %d, want %d", s.Builds, n)
	}

	// The newest key survived and is served without rebuilding.
	_, data, hit, err := acquirePacked(e, testKey(n, 1, 8), 32, func([]float32) error {
		t.Fatal("rebuilt a cached image")
		return nil
	})
	if err != nil || !hit {
		t.Fatalf("expected warm hit, got hit=%v err=%v", hit, err)
	}
	if data[0] != float32(n) {
		t.Fatalf("warm image corrupted: %v", data[0])
	}
}

// A generation bump purges the older generation's image on the next
// build for the same (operand, plan, role).
func TestPackCacheStaleGenerationPurge(t *testing.T) {
	e := New(core.DefaultTuning())
	build := func(v float32) func([]float32) error {
		return func(dst []float32) error {
			for i := range dst {
				dst[i] = v
			}
			return nil
		}
	}
	ent, _, _, err := acquirePacked(e, testKey(7, 1, 8), 16, build(1))
	if err != nil {
		t.Fatal(err)
	}
	e.packs.release(ent)

	ent, data, hit, err := acquirePacked(e, testKey(7, 2, 8), 16, build(2))
	if err != nil {
		t.Fatal(err)
	}
	if hit || data[0] != 2 {
		t.Fatalf("generation bump served stale data: hit=%v v=%v", hit, data[0])
	}
	e.packs.release(ent)

	s := e.packs.snapshot()
	if s.Stale != 1 {
		t.Fatalf("stale purges = %d, want 1", s.Stale)
	}
	if s.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (old generation purged)", s.Entries)
	}
}

// A failed build must not leave a poisoned entry behind, and the backing
// buffer must return to the pool.
func TestPackCacheBuildError(t *testing.T) {
	e := New(core.DefaultTuning())
	boom := errors.New("boom")
	_, _, _, err := acquirePacked(e, testKey(9, 1, 8), 16, func([]float32) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if s := e.packs.snapshot(); s.Entries != 0 {
		t.Fatalf("failed build left %d entries", s.Entries)
	}
	// The key is retryable.
	ent, data, hit, err := acquirePacked(e, testKey(9, 1, 8), 16, func(dst []float32) error {
		dst[0] = 5
		return nil
	})
	if err != nil || hit || data[0] != 5 {
		t.Fatalf("retry after failed build: hit=%v err=%v v=%v", hit, err, data[0])
	}
	e.packs.release(ent)
}

// Concurrent cold misses on one key single-flight: exactly one build
// runs and everyone sees the same image.
func TestPackCacheSingleFlight(t *testing.T) {
	e := New(core.DefaultTuning())
	var builds sync.Map
	var wg sync.WaitGroup
	const goroutines = 16
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ent, data, _, err := acquirePacked(e, testKey(11, 1, 8), 64, func(dst []float32) error {
				builds.Store(g, true)
				for i := range dst {
					dst[i] = 42
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if data[0] != 42 {
				t.Errorf("goroutine %d: wrong image %v", g, data[0])
			}
			e.packs.release(ent)
		}(g)
	}
	wg.Wait()
	n := 0
	builds.Range(func(any, any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("%d builds ran, want 1 (single-flight)", n)
	}
	if s := e.packs.snapshot(); s.Builds != 1 || s.Hits != goroutines-1 {
		t.Fatalf("builds=%d hits=%d, want 1/%d", s.Builds, s.Hits, goroutines-1)
	}
}

// Eviction while a call still holds a reference must not recycle the
// buffer under the reader: the image stays valid until the last release.
func TestPackCacheEvictionKeepsLiveReference(t *testing.T) {
	e := New(core.DefaultTuning())
	held, data, _, err := acquirePacked(e, testKey(1, 1, 8), 16, func(dst []float32) error {
		for i := range dst {
			dst[i] = 77
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flood the cache so the held entry is evicted.
	for id := uint64(2); id <= packCacheCap+2; id++ {
		ent, _, _, err := acquirePacked(e, testKey(id, 1, 8), 16, func(dst []float32) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		e.packs.release(ent)
	}
	if s := e.packs.snapshot(); s.Evictions == 0 {
		t.Fatal("flood did not evict")
	}
	before := e.rt.Bufs.Snapshot().Puts
	for i := range data {
		if data[i] != 77 {
			t.Fatalf("evicted-but-held image corrupted at %d: %v", i, data[i])
		}
	}
	e.packs.release(held)
	if after := e.rt.Bufs.Snapshot().Puts; after <= before {
		t.Fatalf("final release did not return the buffer: puts %d -> %d", before, after)
	}
}

// Generation churn (a chained solver invalidating its operand every
// iteration) must not grow the FIFO order record without bound: stale
// purges unlink map entries but historically left their keys in order.
func TestPackCacheOrderCompaction(t *testing.T) {
	e := New(core.DefaultTuning())
	const churns = 10 * packCacheCap
	for gen := uint64(1); gen <= churns; gen++ {
		ent, _, _, err := acquirePacked(e, testKey(11, gen, 8), 16, func(dst []float32) error {
			dst[0] = float32(gen)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		e.packs.release(ent)
	}
	e.packs.mu.Lock()
	orderLen, entries := len(e.packs.order), len(e.packs.m)
	e.packs.mu.Unlock()
	if orderLen > 2*entries+packCacheCap {
		t.Fatalf("order grew unboundedly under churn: %d keys for %d entries", orderLen, entries)
	}
	if entries != 1 {
		t.Fatalf("entries = %d, want 1 (one live generation)", entries)
	}
}

// A stale-generation purge must not free a donated image a running
// chain still holds: the entry's refcount keeps the buffer alive until
// the last holder releases it.
func TestPackCacheStalePurgeKeepsHeldReference(t *testing.T) {
	e := New(core.DefaultTuning())
	ent, data, _, err := acquirePacked(e, testKey(13, 1, 8), 16, func(dst []float32) error {
		for i := range dst {
			dst[i] = 42
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Generation bump: the purge drops the cache's reference while we
	// still hold ours (a chain mid-execution against the image).
	ent2, _, _, err := acquirePacked(e, testKey(13, 2, 8), 16, func(dst []float32) error {
		for i := range dst {
			dst[i] = 43
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := e.packs.snapshot(); s.Stale != 1 {
		t.Fatalf("stale purges = %d, want 1", s.Stale)
	}
	for i := range data {
		if data[i] != 42 {
			t.Fatalf("held image freed or overwritten at %d: %v", i, data[i])
		}
	}
	if ent.refs.Load() != 1 {
		t.Fatalf("held entry refs = %d, want 1 (caller only)", ent.refs.Load())
	}
	e.packs.release(ent)
	e.packs.release(ent2)
	if ent.refs.Load() != 0 {
		t.Fatalf("released entry refs = %d, want 0", ent.refs.Load())
	}
}
