package engine

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"iatf/internal/core"
	"iatf/internal/obs"
)

// tracedGEMMDesc returns the shared async GEMM descriptor tagged with a
// trace id and tenant origin.
func tracedGEMMDesc(trace, origin string) OpDesc {
	d := asyncGEMMDesc
	d.Trace, d.Origin = trace, origin
	return d
}

// TestTraceSyncPropagation: a traced sync Run delivers a span carrying
// the request's trace id and origin, and the tags stay out of the plan
// identity (the traced rerun is a plan-cache hit).
func TestTraceSyncPropagation(t *testing.T) {
	e := New(core.DefaultTuning())
	var mu sync.Mutex
	var got []obs.Span
	e.obs.SetSpanSink(func(sp *obs.Span) {
		mu.Lock()
		got = append(got, *sp)
		mu.Unlock()
	})
	rng := rand.New(rand.NewSource(130))
	a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)

	if err := e.Run(asyncGEMMDesc, op32(a), op32(b), op32(c)); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(tracedGEMMDesc("aaaabbbb", "rt"), op32(a), op32(b), op32(c)); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("spans = %d, want 2", len(got))
	}
	if got[0].TraceID != "" || got[0].Origin != "" {
		t.Fatalf("untagged span carries trace/origin: %+v", got[0])
	}
	if got[1].TraceID != "aaaabbbb" || got[1].Origin != "rt" {
		t.Fatalf("traced span = trace %q origin %q", got[1].TraceID, got[1].Origin)
	}
	if s := e.Stats(); s.PlanMisses != 1 || s.PlanHits != 1 {
		t.Fatalf("trace tags changed plan identity: hits %d misses %d, want 1/1", s.PlanHits, s.PlanMisses)
	}
}

// TestTraceFusedDispatch: when tagged requests coalesce, the fused
// parent span collects every rider's trace id in Riders while each
// child span keeps its own TraceID/Origin — so a single trace id is
// followable from the rider to the shared dispatch and back.
func TestTraceFusedDispatch(t *testing.T) {
	e := New(core.DefaultTuning())
	var mu sync.Mutex
	var all []obs.Span
	e.obs.SetSpanSink(func(sp *obs.Span) {
		mu.Lock()
		all = append(all, *sp)
		mu.Unlock()
	})
	entered, gate := holdDispatcher(e)
	rng := rand.New(rand.NewSource(131))
	ctx := context.Background()

	a0, b0, c0 := gemmReqOperands(rng, 8, 4, 4, 4)
	f0, err := e.Submit(ctx, asyncGEMMDesc, op32(a0), op32(b0), op32(c0))
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	const N = 3
	traces := [N]string{"trace-a", "trace-b", "trace-c"}
	var futs [N]*Future
	for i := 0; i < N; i++ {
		a, b, c := gemmReqOperands(rng, 10, 6, 5, 7)
		futs[i], err = e.Submit(ctx, tracedGEMMDesc(traces[i], "rt"), op32(a), op32(b), op32(c))
		if err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		if err := futs[i].Err(); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	var parent *obs.Span
	children := map[string]*obs.Span{}
	for i := range all {
		switch {
		case all[i].Fused == N:
			parent = &all[i]
		case all[i].ParentID != 0:
			children[all[i].TraceID] = &all[i]
		}
	}
	if parent == nil {
		t.Fatalf("no fused parent among %d spans", len(all))
	}
	if parent.TraceID != "" || parent.Origin != "" {
		t.Fatalf("parent inherited a rider's tags: trace %q origin %q", parent.TraceID, parent.Origin)
	}
	if len(parent.Riders) != N {
		t.Fatalf("parent riders = %v, want %d ids", parent.Riders, N)
	}
	riders := map[string]bool{}
	for _, id := range parent.Riders {
		riders[id] = true
	}
	for _, tr := range traces {
		if !riders[tr] {
			t.Fatalf("rider trace %q missing from parent riders %v", tr, parent.Riders)
		}
		ch := children[tr]
		if ch == nil {
			t.Fatalf("no child span for trace %q", tr)
		}
		if ch.ParentID != parent.ID || ch.Origin != "rt" {
			t.Fatalf("child %q: parent %d (want %d), origin %q", tr, ch.ParentID, parent.ID, ch.Origin)
		}
	}
}

// TestTenantAccountingPaths drives every resolution class through one
// engine and checks the ledger: objective hits, objective misses, plain
// errors, cancellation misses, and queue-full sheds.
func TestTenantAccountingPaths(t *testing.T) {
	e := New(core.DefaultTuning())
	e.SetTenants(map[string]obs.TenantObjective{
		"hit":  {Class: 1, Objective: 10 * time.Second, Target: 0.99},
		"miss": {Class: 1, Objective: time.Nanosecond, Target: 0.99},
	})
	rng := rand.New(rand.NewSource(132))
	a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)

	// Success within a generous objective → deadline hit.
	if err := e.Run(tracedGEMMDesc("t1", "hit"), op32(a), op32(b), op32(c)); err != nil {
		t.Fatal(err)
	}
	// Success over an impossible objective → deadline miss.
	if err := e.Run(tracedGEMMDesc("t2", "miss"), op32(a), op32(b), op32(c)); err != nil {
		t.Fatal(err)
	}
	// Shape error → plain error, not burned.
	bad := randCompact(rng, 8, 5, 5)
	if err := e.Run(tracedGEMMDesc("t3", "hit"), op32(a), op32(b), op32(bad)); err == nil {
		t.Fatal("mismatched GEMM did not fail")
	}
	// Cancelled while queued → deadline miss.
	entered, gate := holdDispatcher(e)
	f0, err := e.Submit(context.Background(), asyncGEMMDesc, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	fut, err := e.Submit(ctx, tracedGEMMDesc("t4", "hit"), op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(gate)
	_ = fut.Err()
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}
	// Admission-control shed (never submitted).
	e.RecordTenantShed("hit")

	byName := map[string]obs.TenantSnapshot{}
	for _, ts := range e.TenantStats() {
		byName[ts.Name] = ts
	}
	hit := byName["hit"]
	if hit.Requests != 4 || hit.DeadlineHits != 1 || hit.DeadlineMisses != 1 ||
		hit.Errors != 1 || hit.Sheds != 1 {
		t.Fatalf("hit series = %+v, want requests 4, hits 1, misses 1, errors 1, sheds 1", hit)
	}
	if hit.Latency.Count != 1 {
		t.Fatalf("hit latency observations = %d, want 1 (only successes observe)", hit.Latency.Count)
	}
	// Window: 2 bad (miss + shed) of 4 → burn = 0.5/0.01 = 50.
	if hit.WindowRequests != 4 || hit.WindowBad != 2 {
		t.Fatalf("hit window = %d/%d, want 4/2", hit.WindowBad, hit.WindowRequests)
	}
	if hit.BurnRate < 49 || hit.BurnRate > 51 {
		t.Fatalf("hit burn rate = %g, want 50", hit.BurnRate)
	}
	miss := byName["miss"]
	if miss.Requests != 1 || miss.DeadlineMisses != 1 || miss.DeadlineHits != 0 {
		t.Fatalf("miss series = %+v, want 1 request, 1 miss", miss)
	}
}

// TestTenantQueueFullShed: a tenant-tagged submission rejected by a full
// queue lands in the ledger as a shed even with no sink installed —
// accounting forces the span.
func TestTenantQueueFullShed(t *testing.T) {
	e := New(core.DefaultTuning())
	if err := e.SetQueueCapacity(1); err != nil {
		t.Fatal(err)
	}
	e.SetTenants(map[string]obs.TenantObjective{"rt": {Class: 5, Objective: time.Second, Target: 0.99}})
	rng := rand.New(rand.NewSource(133))
	a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)
	ctx := context.Background()

	entered, gate := holdDispatcher(e)
	f0, err := e.Submit(ctx, asyncGEMMDesc, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	// Fill the capacity-1 queue, then overflow it with the tagged request.
	f1, err := e.Submit(ctx, asyncGEMMDesc, op32(a), op32(b), op32(c))
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Submit(ctx, tracedGEMMDesc("t-full", "rt"), op32(a), op32(b), op32(c))
	if err == nil {
		t.Fatal("overflow submit did not fail")
	}
	close(gate)
	if err := f0.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f1.Err(); err != nil {
		t.Fatal(err)
	}

	ts := e.TenantStats()
	if len(ts) != 1 || ts[0].Name != "rt" {
		t.Fatalf("tenant stats = %+v", ts)
	}
	if ts[0].Requests != 1 || ts[0].Sheds != 1 || ts[0].WindowBad != 1 {
		t.Fatalf("rt series = %+v, want 1 request / 1 shed / 1 window bad", ts[0])
	}
}

// TestTenantSetAggregation: per-shard series merge into one cross-shard
// view — counters sum, histograms merge bucket-wise, burn recomputes
// from the summed window, and shard-affine sheds land somewhere.
func TestTenantSetAggregation(t *testing.T) {
	s := NewSet(core.DefaultTuning(), 3)
	s.SetTenants(map[string]obs.TenantObjective{"rt": {Class: 5, Objective: 10 * time.Second, Target: 0.9}})
	rng := rand.New(rand.NewSource(134))

	// Distinct shapes route to distinct shards; all tagged rt.
	shapes := [][3]int{{4, 4, 4}, {6, 5, 7}, {8, 8, 8}, {5, 6, 4}}
	for _, sh := range shapes {
		a, b, c := gemmReqOperands(rng, 8, sh[0], sh[1], sh[2])
		if err := s.Run(tracedGEMMDesc("t", "rt"), op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}
	s.RecordTenantShed("rt")

	agg := s.TenantStats()
	if len(agg) != 1 || agg[0].Name != "rt" {
		t.Fatalf("aggregate = %+v", agg)
	}
	rt := agg[0]
	if rt.Shard != -1 {
		t.Fatalf("aggregate shard = %d, want -1", rt.Shard)
	}
	if rt.Requests != uint64(len(shapes))+1 || rt.Sheds != 1 {
		t.Fatalf("aggregate requests/sheds = %d/%d, want %d/1", rt.Requests, rt.Sheds, len(shapes)+1)
	}
	if rt.DeadlineHits != uint64(len(shapes)) {
		t.Fatalf("aggregate hits = %d, want %d", rt.DeadlineHits, len(shapes))
	}
	if rt.Latency.Count != uint64(len(shapes)) {
		t.Fatalf("merged latency count = %d, want %d", rt.Latency.Count, len(shapes))
	}
	if rt.Objective != 10*time.Second || rt.Target != 0.9 || rt.Class != 5 {
		t.Fatalf("aggregate objective lost: %+v", rt)
	}
	// 1 bad of 5 over a 0.1 budget → burn 2.
	if rt.BurnRate < 1.9 || rt.BurnRate > 2.1 {
		t.Fatalf("aggregate burn = %g, want 2", rt.BurnRate)
	}

	// The per-shard view in Stats() carries real shard indices.
	st := s.Stats()
	if len(st.Aggregate.Tenants) != 1 {
		t.Fatalf("set stats aggregate tenants = %+v", st.Aggregate.Tenants)
	}
	perShard := 0
	for _, sh := range st.Shards {
		for _, ten := range sh.Tenants {
			if ten.Name == "rt" && ten.Requests > 0 {
				perShard++
				if ten.Shard < 0 || ten.Shard >= 3 {
					t.Fatalf("shard series carries shard %d", ten.Shard)
				}
			}
		}
	}
	if perShard == 0 {
		t.Fatal("no shard-level rt series with traffic")
	}
}

// TestTenantOpenMetricsFamilies: with accounting enabled the scrape
// carries the iatf_tenant_* families — TYPE declared once per family,
// label values escaped, counters suffixed _total — and still ends with
// # EOF. A tenant name with quotes and backslashes must round-trip
// escaped.
func TestTenantOpenMetricsFamilies(t *testing.T) {
	e := New(core.DefaultTuning())
	weird := `ten"ant\x`
	e.SetTenants(map[string]obs.TenantObjective{
		"rt":  {Class: 5, Objective: 10 * time.Second, Target: 0.99},
		weird: {Class: 1},
	})
	rng := rand.New(rand.NewSource(135))
	a, b, c := gemmReqOperands(rng, 8, 4, 4, 4)
	for _, origin := range []string{"rt", weird} {
		if err := e.Run(tracedGEMMDesc("t", origin), op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := e.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF")
	}
	for _, fam := range []string{
		"iatf_tenant_requests", "iatf_tenant_sheds",
		"iatf_tenant_deadline_hits", "iatf_tenant_deadline_misses",
		"iatf_tenant_slo_objective_seconds", "iatf_tenant_slo_target",
		"iatf_tenant_slo_burn_rate", "iatf_tenant_latency_seconds",
	} {
		if c := strings.Count(out, "# TYPE "+fam+" "); c != 1 {
			t.Fatalf("family %s declared %d times, want 1", fam, c)
		}
	}
	if !strings.Contains(out, `iatf_tenant_requests_total{tenant="rt"} 1`) {
		t.Fatal("rt tenant counter sample missing")
	}
	if !strings.Contains(out, `tenant="ten\"ant\\x"`) {
		t.Fatalf("weird tenant label not escaped:\n%s", out)
	}
	if !strings.Contains(out, `iatf_tenant_latency_seconds_bucket{tenant="rt",le="+Inf"} 1`) {
		t.Fatal("tenant latency histogram missing +Inf bucket")
	}

	// Disabled accounting emits no tenant families.
	e2 := New(core.DefaultTuning())
	if err := e2.Run(asyncGEMMDesc, op32(a), op32(b), op32(c)); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := e2.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "iatf_tenant_") {
		t.Fatal("tenant families present with accounting disabled")
	}
}
