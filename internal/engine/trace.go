package engine

import (
	"fmt"

	"iatf/internal/core"
	"iatf/internal/obs"
	"iatf/internal/sched"
)

// Trace-event assembly: each builder renders one dispatched call's
// command queue — the packing kernels the Pack Selector chose, the
// tile/kernel sequence of one interleave group, the Batch Counter's
// super-batch size and the worker split — mirroring the traversal order
// of the native executors in internal/core. Builders only run for traced
// calls, so they may allocate freely.

// traceBase fills the descriptor and worker-split fields shared by all
// ops: groups are pulled in super-batch-sized chunks by up to `workers`
// participants (capped by the chunk count, as sched.Run does).
func traceBase(op OpDesc, dtype, mode string, m, n, k, count, groups, gpb int, outcome obs.CacheOutcome) obs.TraceEvent {
	chunks := (groups + gpb - 1) / gpb
	workers := sched.Resolve(op.Workers)
	if workers > chunks {
		workers = chunks
	}
	return obs.TraceEvent{
		Op: op.Kind.String(), DType: dtype, Mode: mode,
		M: m, N: n, K: k, Count: count,
		CacheOutcome:   outcome.String(),
		Groups:         groups,
		GroupsPerBatch: gpb,
		Chunks:         chunks,
		Workers:        workers,
	}
}

func gemmTrace(op OpDesc, pl *core.GEMMPlan, groups int, outcome obs.CacheOutcome) obs.TraceEvent {
	p := pl.P
	ev := traceBase(op, p.DT.String(), gemmMode(op.TransA, op.TransB),
		p.M, p.N, p.K, p.Count, groups, pl.GroupsPerBatch, outcome)
	if pl.PackA {
		ev.Queue = append(ev.Queue, obs.Command{Stage: "pack", Kernel: "npackA",
			Detail: fmt.Sprintf("A row panels (N-shape), M tiles %v, K=%d", pl.MTiles, p.K)})
	} else {
		ev.Queue = append(ev.Queue, obs.Command{Stage: "pack", Kernel: "none",
			Detail: "A no-packing fast path (§4.4): native order already is the row panel"})
	}
	if pl.PackB {
		ev.Queue = append(ev.Queue, obs.Command{Stage: "pack", Kernel: "npackB",
			Detail: fmt.Sprintf("B column panels (Z-shape), N tiles %v, K=%d", pl.NTiles, p.K)})
	} else {
		ev.Queue = append(ev.Queue, obs.Command{Stage: "pack", Kernel: "none",
			Detail: "B no-packing fast path (§4.4): Bᵀ storage already is the single column panel"})
	}
	if p.Beta != 0 && p.Beta != 1 {
		ev.Queue = append(ev.Queue, obs.Command{Stage: "scale", Kernel: "nscale",
			Detail: fmt.Sprintf("C *= beta (%v)", p.Beta)})
	}
	i0 := 0
	for _, mc := range pl.MTiles {
		j0 := 0
		for _, nc := range pl.NTiles {
			kOff := 0
			for _, kc := range pl.KChunks {
				ev.Queue = append(ev.Queue, obs.Command{Stage: "compute",
					Kernel: fmt.Sprintf("%sgemm_%dx%d", p.DT, mc, nc),
					Detail: fmt.Sprintf("C[%d:%d,%d:%d] += op(A)·op(B), k=%d:%d",
						i0, i0+mc, j0, j0+nc, kOff, kOff+kc)})
				kOff += kc
			}
			j0 += nc
		}
		i0 += mc
	}
	return ev
}

// triSteps renders the shared TRSM/TRMM panel decomposition: panel
// heights with their row offsets.
func triSteps(panels []int) []struct{ r0, q int } {
	out := make([]struct{ r0, q int }, 0, len(panels))
	r0 := 0
	for _, q := range panels {
		out = append(out, struct{ r0, q int }{r0, q})
		r0 += q
	}
	return out
}

func triPackQueue(q []obs.Command, packB, reverse, transpose, recip bool, panels []int) []obs.Command {
	diag := "true diagonal"
	if recip {
		diag = "reciprocal diagonal"
	}
	q = append(q, obs.Command{Stage: "pack", Kernel: "npackTri",
		Detail: fmt.Sprintf("packed triangle, panels %v, %s", panels, diag)})
	if packB {
		q = append(q, obs.Command{Stage: "pack", Kernel: "nBCopy",
			Detail: fmt.Sprintf("canonicalize B (reverse=%v, transpose=%v)", reverse, transpose)})
	} else {
		q = append(q, obs.Command{Stage: "pack", Kernel: "none",
			Detail: "B in place: canonical lower solve order (§4.4)"})
	}
	return q
}

func trsmTrace(op OpDesc, pl *core.TRSMPlan, groups int, outcome obs.CacheOutcome) obs.TraceEvent {
	p := pl.P
	ev := traceBase(op, p.DT.String(), p.Mode(), p.M, p.N, 0, p.Count, groups, pl.GroupsPerBatch, outcome)
	ev.Queue = triPackQueue(ev.Queue, pl.PackB, pl.ReverseB, pl.TransposeB, true, pl.Panels)
	if p.Alpha != 1 {
		ev.Queue = append(ev.Queue, obs.Command{Stage: "scale", Kernel: "nscale",
			Detail: fmt.Sprintf("B *= alpha (%v)", p.Alpha)})
	}
	steps := triSteps(pl.Panels)
	for _, ct := range pl.ColTiles {
		for _, st := range steps {
			if st.r0 > 0 {
				ev.Queue = append(ev.Queue, obs.Command{Stage: "compute",
					Kernel: fmt.Sprintf("%strsm_rect_%dx%d", p.DT, st.q, ct),
					Detail: fmt.Sprintf("panel rows %d:%d -= A[%d:,0:%d]·X, %d cols", st.r0, st.r0+st.q, st.r0, st.r0, ct)})
			}
			ev.Queue = append(ev.Queue, obs.Command{Stage: "compute",
				Kernel: fmt.Sprintf("%strsm_tri_%d", p.DT, st.q),
				Detail: fmt.Sprintf("solve %dx%d triangle, rows %d:%d, %d cols", st.q, st.q, st.r0, st.r0+st.q, ct)})
		}
	}
	if pl.PackB {
		ev.Queue = append(ev.Queue, obs.Command{Stage: "writeback", Kernel: "nBUncopy",
			Detail: "restore B from the canonical buffer"})
	}
	return ev
}

func trmmTrace(op OpDesc, pl *core.TRMMPlan, groups int, outcome obs.CacheOutcome) obs.TraceEvent {
	p := pl.P
	ev := traceBase(op, p.DT.String(), p.Mode(), p.M, p.N, 0, p.Count, groups, pl.GroupsPerBatch, outcome)
	ev.Queue = triPackQueue(ev.Queue, pl.PackB, pl.ReverseB, pl.TransposeB, false, pl.Panels)
	if p.Alpha != 1 {
		ev.Queue = append(ev.Queue, obs.Command{Stage: "scale", Kernel: "nscale",
			Detail: fmt.Sprintf("B *= alpha (%v)", p.Alpha)})
	}
	steps := triSteps(pl.Panels)
	for _, ct := range pl.ColTiles {
		// Bottom-up panel order: each panel multiplies its own rows
		// before any panel above it is touched.
		for i := len(steps) - 1; i >= 0; i-- {
			st := steps[i]
			ev.Queue = append(ev.Queue, obs.Command{Stage: "compute",
				Kernel: fmt.Sprintf("%strmm_tri_%d", p.DT, st.q),
				Detail: fmt.Sprintf("rows %d:%d *= %dx%d triangle, %d cols", st.r0, st.r0+st.q, st.q, st.q, ct)})
			if st.r0 > 0 {
				ev.Queue = append(ev.Queue, obs.Command{Stage: "compute",
					Kernel: fmt.Sprintf("%strmm_rect_%dx%d", p.DT, st.q, ct),
					Detail: fmt.Sprintf("rows %d:%d += A[%d:,0:%d]·B[0:%d], %d cols", st.r0, st.r0+st.q, st.r0, st.r0, st.r0, ct)})
			}
		}
	}
	if pl.PackB {
		ev.Queue = append(ev.Queue, obs.Command{Stage: "writeback", Kernel: "nBUncopy",
			Detail: "restore B from the canonical buffer"})
	}
	return ev
}

func syrkTrace(op OpDesc, pl *core.SYRKPlan, groups int, outcome obs.CacheOutcome) obs.TraceEvent {
	p := pl.P
	ev := traceBase(op, p.DT.String(), op.TransA.String()+op.Uplo.String(),
		p.N, p.N, p.K, p.Count, groups, pl.GroupsPerBatch, outcome)
	ev.Queue = append(ev.Queue,
		obs.Command{Stage: "pack", Kernel: "npackA",
			Detail: fmt.Sprintf("op(A) row panels (N-shape), tiles %v, K=%d", pl.Tiles, p.K)},
		obs.Command{Stage: "pack", Kernel: "npackB",
			Detail: fmt.Sprintf("op(A)ᵀ column panels (Z-shape), tiles %v, K=%d", pl.Tiles, p.K)})
	if p.Beta != 1 {
		ev.Queue = append(ev.Queue, obs.Command{Stage: "scale", Kernel: "scaleTriangle",
			Detail: fmt.Sprintf("%s triangle of C *= beta (%v)", op.Uplo, p.Beta)})
	}
	upper := op.Uplo.String() == "U"
	i0 := 0
	for ti, mc := range pl.Tiles {
		j0 := 0
		for tj, nc := range pl.Tiles {
			diag := ti == tj
			want := diag || (upper && j0 > i0) || (!upper && j0 < i0)
			if !want {
				j0 += nc
				continue
			}
			kernel := fmt.Sprintf("%sgemm_%dx%d", p.DT, mc, nc)
			detail := fmt.Sprintf("C[%d:%d,%d:%d] += op(A)·op(A)ᵀ, K=%d", i0, i0+mc, j0, j0+nc, p.K)
			if diag {
				detail = fmt.Sprintf("scratch tile %dx%d += op(A)·op(A)ᵀ, K=%d; merge %s triangle into C[%d:%d,%d:%d]",
					mc, nc, p.K, op.Uplo, i0, i0+mc, j0, j0+nc)
			}
			ev.Queue = append(ev.Queue, obs.Command{Stage: "compute", Kernel: kernel, Detail: detail})
			j0 += nc
		}
		i0 += mc
	}
	return ev
}
