package engine

import (
	"math/rand"
	"testing"

	"iatf/internal/core"
	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// Parity property: the engine's count-bucketed cached plans must be
// bit-exact against plans built directly for the exact batch count. The
// cache rounds Count up to a power of two (so nearby counts share one
// plan) and splices the real count and scalars back in at dispatch; if
// bucketing ever leaked into the numerics — super-batch sizing, tile
// grids, padding-lane handling — these runs would diverge. Counts probe
// the bucket boundaries: 1, 2^k-1, 2^k, 2^k+1.

var parityCounts = []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33}

func randCompactT[E vec.Float](rng *rand.Rand, dt vec.DType, count, rows, cols int) *layout.Compact[E] {
	b := matrix.NewBatch[E](count, rows, cols)
	matrix.Fill(rng, b.Data)
	return layout.FromBatch(dt, b)
}

func opOf[E vec.Float](dt vec.DType, c *layout.Compact[E]) Operand {
	o := Operand{DT: dt}
	switch cc := any(c).(type) {
	case *layout.Compact[float32]:
		o.F32 = cc
	case *layout.Compact[float64]:
		o.F64 = cc
	}
	return o
}

// boostDiag makes every matrix in the batch strictly diagonally dominant
// so TRSM solves stay well away from catastrophic cancellation.
func boostDiag[E vec.Float](c *layout.Compact[E]) {
	for v := 0; v < c.Count; v++ {
		for i := 0; i < c.Rows; i++ {
			re, im := c.At(v, i, i)
			c.Set(v, i, i, re+E(c.Rows)+4, im)
		}
	}
}

func requireBitExact[E vec.Float](t *testing.T, label string, count int, want, got *layout.Compact[E]) {
	t.Helper()
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s count=%d: engine and direct plan diverge at elem %d: %v vs %v",
				label, count, i, got.Data[i], want.Data[i])
		}
	}
}

func parityForDType[E vec.Float](t *testing.T, dt vec.DType) {
	e := New(core.DefaultTuning())
	tun := core.DefaultTuning()
	const m, n, k = 5, 4, 6
	const alpha, beta = 1.25, 0.75

	for _, count := range parityCounts {
		rng := rand.New(rand.NewSource(int64(1000 + count)))

		// GEMM: C = alpha·A·B + beta·C.
		a := randCompactT[E](rng, dt, count, m, k)
		b := randCompactT[E](rng, dt, count, k, n)
		c := randCompactT[E](rng, dt, count, m, n)
		cEng := c.Clone()
		op := OpDesc{Kind: OpGEMM, Alpha: alpha, Beta: beta, Workers: 1}
		if err := e.Run(op, opOf(dt, a), opOf(dt, b), opOf(dt, cEng)); err != nil {
			t.Fatalf("GEMM count=%d: %v", count, err)
		}
		pl, err := core.NewGEMMPlan(core.GEMMProblem{
			DT: dt, M: m, N: n, K: k, Alpha: alpha, Beta: beta, Count: count}, tun)
		if err != nil {
			t.Fatalf("GEMM direct plan count=%d: %v", count, err)
		}
		if err := core.ExecGEMMNative(pl, a, b, c); err != nil {
			t.Fatalf("GEMM direct exec count=%d: %v", count, err)
		}
		requireBitExact(t, "GEMM", count, c, cEng)

		// TRSM (Left/Lower/NonUnit): solve A·X = alpha·B in place.
		at := randCompactT[E](rng, dt, count, m, m)
		boostDiag(at)
		bt := randCompactT[E](rng, dt, count, m, n)
		btEng := bt.Clone()
		trsm := OpDesc{Kind: OpTRSM, Side: matrix.Left, Uplo: matrix.Lower, Alpha: alpha, Workers: 1}
		if err := e.Run(trsm, opOf(dt, at), opOf(dt, btEng)); err != nil {
			t.Fatalf("TRSM count=%d: %v", count, err)
		}
		spl, err := core.NewTRSMPlan(core.TRSMProblem{
			DT: dt, M: m, N: n, Side: matrix.Left, Uplo: matrix.Lower,
			Alpha: alpha, Count: count}, tun)
		if err != nil {
			t.Fatalf("TRSM direct plan count=%d: %v", count, err)
		}
		if err := core.ExecTRSMNative(spl, at, bt); err != nil {
			t.Fatalf("TRSM direct exec count=%d: %v", count, err)
		}
		requireBitExact(t, "TRSM", count, bt, btEng)

		// TRMM (Left/Lower/NonUnit): B = alpha·A·B in place.
		bm := randCompactT[E](rng, dt, count, m, n)
		bmEng := bm.Clone()
		trmm := OpDesc{Kind: OpTRMM, Side: matrix.Left, Uplo: matrix.Lower, Alpha: alpha, Workers: 1}
		if err := e.Run(trmm, opOf(dt, at), opOf(dt, bmEng)); err != nil {
			t.Fatalf("TRMM count=%d: %v", count, err)
		}
		mpl, err := core.NewTRMMPlan(core.TRMMProblem{
			DT: dt, M: m, N: n, Side: matrix.Left, Uplo: matrix.Lower,
			Alpha: alpha, Count: count}, tun)
		if err != nil {
			t.Fatalf("TRMM direct plan count=%d: %v", count, err)
		}
		if err := core.ExecTRMMNative(mpl, at, bm); err != nil {
			t.Fatalf("TRMM direct exec count=%d: %v", count, err)
		}
		requireBitExact(t, "TRMM", count, bm, bmEng)

		// SYRK (Lower): C = alpha·A·Aᵀ + beta·C.
		as := randCompactT[E](rng, dt, count, n, k)
		cs := randCompactT[E](rng, dt, count, n, n)
		csEng := cs.Clone()
		syrk := OpDesc{Kind: OpSYRK, Uplo: matrix.Lower, Alpha: alpha, Beta: beta, Workers: 1}
		if err := e.Run(syrk, opOf(dt, as), opOf(dt, csEng)); err != nil {
			t.Fatalf("SYRK count=%d: %v", count, err)
		}
		ypl, err := core.NewSYRKPlan(core.SYRKProblem{
			DT: dt, N: n, K: k, Uplo: matrix.Lower,
			Alpha: alpha, Beta: beta, Count: count}, tun)
		if err != nil {
			t.Fatalf("SYRK direct plan count=%d: %v", count, err)
		}
		if err := core.ExecSYRKNative(ypl, as, cs); err != nil {
			t.Fatalf("SYRK direct exec count=%d: %v", count, err)
		}
		requireBitExact(t, "SYRK", count, cs, csEng)
	}

	// The whole sweep must have been served by a handful of bucketed
	// plans, not one per count — otherwise the property above is vacuous.
	s := e.Stats()
	if s.PlanHits == 0 {
		t.Error("no plan-cache hits: counts did not share bucketed plans")
	}
}

func TestBucketedPlanParityF32(t *testing.T) { parityForDType[float32](t, vec.S) }
func TestBucketedPlanParityF64(t *testing.T) { parityForDType[float64](t, vec.D) }
