// Async submission front-end: the dynamic-batching layer between many
// concurrent callers and the engine's single dispatch path. IATF's
// run-time stage amortizes best when identical descriptors are batched;
// under serving traffic the batches arrive one small request at a time
// from many goroutines, so the engine coalesces them back together at
// run time the way inference servers do:
//
//   - Submit enqueues a request on a bounded per-engine queue and
//     returns a Future. A lazily started dispatcher goroutine drains
//     whatever accumulated while the previous dispatch ran, partitions
//     the drained batch by problem identity (op, dtype, mode, dims,
//     scalars, workers) and executes each bundle as ONE fused dispatch
//     over the concatenated super-batches — one validation, one plan
//     resolution, one worker-pool round-trip for N requests.
//   - When the queue is idle the submitting goroutine executes
//     synchronously instead (the idle fast path), so single-caller
//     latency is identical to a direct Run call.
//   - Requests carry a context.Context: a request whose context is
//     cancelled while queued (or at any point before its bundle
//     executes) resolves with ctx.Err() without executing. A full queue
//     rejects the submission with a typed ErrQueueFull — backpressure
//     instead of unbounded memory growth under overload.
//
// Fusing is group-exact: compact storage is a sequence of independent
// P-matrix interleave groups, so concatenating the group data of N
// same-shape batches yields one valid larger batch and the kernels
// process exactly the same groups they would have processed in N serial
// calls — fused results are bit-identical (the bucketed-plan parity
// property from the plan cache covers the differing batch count).
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/obs"
	"iatf/internal/vec"
)

// ErrQueueFull is returned by Submit when the engine's bounded
// submission queue is at capacity — the overload backpressure signal.
// Callers should shed load or retry with a deadline.
var ErrQueueFull = errors.New("submission queue full")

// A full queue is a shed, not an error, in the per-tenant SLO ledger:
// it consumes the tenant's error budget the same way an admission-
// control rejection does.
func init() { obs.RegisterShedError(ErrQueueFull) }

// ErrQueueStarted is returned by SetQueueCapacity once the dispatcher has
// started (i.e. after the engine's first Submit): the live queue channel
// cannot be resized, so a late call is rejected instead of silently
// ignored or racing the running dispatcher.
var ErrQueueStarted = errors.New("submission queue already started")

// DefaultQueueCapacity bounds the per-engine submission queue unless
// SetQueueCapacity overrides it before the first Submit.
const DefaultQueueCapacity = 1024

// Future is the completion handle of one submitted request. It resolves
// exactly once: with the dispatch error (nil on success), the request's
// ctx.Err() if it was cancelled before executing, or the fused bundle's
// error.
type Future struct {
	done chan struct{}
	err  error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

func (f *Future) resolve(err error) {
	f.err = err
	close(f.done)
}

// Done returns a channel closed when the request has completed (or been
// rejected/cancelled).
func (f *Future) Done() <-chan struct{} { return f.done }

// Err returns the request's outcome. It blocks until the future
// resolves.
func (f *Future) Err() error {
	<-f.done
	return f.err
}

// Wait blocks until the request completes or ctx is done, whichever
// comes first, and returns the corresponding error. Abandoning the wait
// does not cancel the request: the submission's own context governs
// execution.
func (f *Future) Wait(ctx context.Context) error {
	select {
	case <-f.done:
		return f.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// asyncReq is one queued submission.
type asyncReq struct {
	ctx  context.Context
	op   OpDesc
	ops  [3]Operand
	nops int
	fut  *Future

	// Chain submissions (SubmitChain): the stage list, its resolved plan
	// and the fuse identity hash. op then holds stage 0's descriptor so
	// the EDF pass sees the chain's priority. nil chain = ordinary
	// request.
	chain     []ChainStage
	cplan     *chainPlan
	chainHash uint64
	outcome   obs.CacheOutcome

	// deadline/hasDL cache ctx.Deadline() at submission time so the EDF
	// pass never re-walks the context chain on the dispatcher.
	deadline time.Time
	hasDL    bool

	enq  time.Time    // when the request joined the queue (zero on the inline path)
	sp   *obs.Span    // lifecycle span; nil when tracing is off
	sink obs.SpanFunc // per-request span sink (SubmitSpanned), or nil
}

// submitQueue is the per-engine async state: the bounded request channel,
// the dispatcher bootstrap and the serving counters.
type submitQueue struct {
	startOnce sync.Once
	mu        sync.Mutex // guards ch/capacity before the dispatcher starts
	ch        chan *asyncReq
	capacity  int
	busy      atomic.Bool // a dispatch (inline or dispatcher) is in flight

	// fifo disables the EDF pass (SetEDF(false)): drained bundles execute
	// in arrival order, the pre-PR-7 behavior. Default false = EDF on.
	fifo atomic.Bool
	// windowNs is the max-batch-window: after receiving the first request
	// of a batch the dispatcher holds the drain open for this long, so a
	// burst — and any tight-deadline request inside it — lands in one
	// drained batch for the EDF pass to order. 0 (default) drains only
	// what already accumulated.
	windowNs atomic.Int64

	submitted  atomic.Uint64
	inline     atomic.Uint64
	dispatches atomic.Uint64
	coalesced  atomic.Uint64
	cancelled  atomic.Uint64
	rejected   atomic.Uint64
	maxFused   atomic.Int64

	// inflight is the size of the batch the dispatcher is currently
	// executing. len(ch) alone goes to zero the instant a batch is drained
	// even though every request in it is still pending — admission control
	// reading only the channel length would see an "idle" queue in the
	// middle of a 6ms backlog. Depth reports len(ch) + inflight.
	inflight atomic.Int64

	// depthHW is the monotonic queue-depth high-water mark, recorded at
	// enqueue time — Depth alone only samples whatever is pending at
	// snapshot time, which hides bursts that drained before the scrape.
	depthHW atomic.Int64
	// waitHist is the queue-wait distribution: enqueue to bundle start,
	// for every queued request (inline fast-path submissions skip the
	// queue and are not observed).
	waitHist obs.Hist

	// testHook, when set before the first Submit, runs on the dispatcher
	// goroutine after a batch is drained and before it executes — tests
	// use it to hold the dispatcher so queue-full, cancellation and
	// coalescing become deterministic.
	testHook func(drained int)

	// steal, installed by an EngineSet before the dispatcher starts, lets
	// this engine's dispatcher pull queued requests from a sibling shard
	// when its own queue runs dry. It appends the stolen requests to
	// *batch and returns how many were taken. nil for solo engines —
	// their dispatcher blocks on the queue with no polling.
	steal func(batch *[]*asyncReq) int

	stolenBatches atomic.Uint64 // steal attempts that took work (thief side)
	stolenReqs    atomic.Uint64 // requests executed here but queued on a sibling
}

// QueueStats is a snapshot of the async submission layer's counters.
type QueueStats struct {
	Submitted  uint64 // requests accepted by Submit
	Inline     uint64 // idle fast-path submissions executed synchronously
	Dispatches uint64 // dispatch executions (fused bundles count once)
	Coalesced  uint64 // requests that rode along in a fused dispatch beyond its first
	Cancelled  uint64 // requests resolved with ctx.Err() without executing
	Rejected   uint64 // submissions refused with ErrQueueFull
	MaxFused   int    // largest fused bundle observed
	Depth      int    // requests pending: queued plus the batch being executed
	Capacity   int    // queue bound

	// StolenBatches/StolenReqs count work-stealing on the thief side: how
	// often this shard's dispatcher ran dry and pulled from a sibling, and
	// how many sibling-queued requests it executed. Zero for solo engines.
	StolenBatches uint64
	StolenReqs    uint64

	// DepthHighWater is the largest queue depth ever observed at enqueue
	// time (monotonic; survives the burst that caused it).
	DepthHighWater int
	// Wait is the queue-wait distribution: enqueue to bundle start.
	Wait obs.HistSnapshot

	// EDF reports whether deadline-ordered dispatch is enabled (the
	// default); Window is the configured max-batch-window.
	EDF    bool
	Window time.Duration
}

// Add accumulates another queue's counters into s — the EngineSet
// aggregate. Depth, capacity and counters sum; the high-water mark and
// max-fused take the max (a per-shard extremum, not additive); wait
// histograms merge bucket-wise.
func (s *QueueStats) Add(o QueueStats) {
	s.Submitted += o.Submitted
	s.Inline += o.Inline
	s.Dispatches += o.Dispatches
	s.Coalesced += o.Coalesced
	s.Cancelled += o.Cancelled
	s.Rejected += o.Rejected
	s.StolenBatches += o.StolenBatches
	s.StolenReqs += o.StolenReqs
	s.Depth += o.Depth
	s.Capacity += o.Capacity
	if o.MaxFused > s.MaxFused {
		s.MaxFused = o.MaxFused
	}
	if o.DepthHighWater > s.DepthHighWater {
		s.DepthHighWater = o.DepthHighWater
	}
	if o.Window > s.Window {
		s.Window = o.Window
	}
	// The aggregate claims EDF only when every merged shard orders by
	// deadline (shards are configured uniformly through Set.SetEDF).
	s.EDF = s.EDF && o.EDF
	s.Wait.Add(o.Wait)
}

func (q *submitQueue) snapshot() QueueStats {
	q.mu.Lock()
	depth, capacity := 0, q.capacity
	if q.ch != nil {
		depth, capacity = len(q.ch)+int(q.inflight.Load()), cap(q.ch)
	}
	q.mu.Unlock()
	return QueueStats{
		Submitted:      q.submitted.Load(),
		StolenBatches:  q.stolenBatches.Load(),
		StolenReqs:     q.stolenReqs.Load(),
		Inline:         q.inline.Load(),
		Dispatches:     q.dispatches.Load(),
		Coalesced:      q.coalesced.Load(),
		Cancelled:      q.cancelled.Load(),
		Rejected:       q.rejected.Load(),
		MaxFused:       int(q.maxFused.Load()),
		Depth:          depth,
		Capacity:       capacity,
		DepthHighWater: int(q.depthHW.Load()),
		Wait:           q.waitHist.Snapshot(),
		EDF:            !q.fifo.Load(),
		Window:         time.Duration(q.windowNs.Load()),
	}
}

// QueueStats returns only the submission-queue slice of Stats. Unlike
// Stats it snapshots no shape series or cache maps, so a serving tier
// can consult it per admission decision.
func (e *Engine) QueueStats() QueueStats { return e.queue.snapshot() }

// SetEDF toggles deadline-ordered dispatch. When on (the default) the
// dispatcher executes each drained batch's bundles in earliest-context-
// deadline order, with OpDesc.Priority breaking ties, so a tight-deadline
// request never waits behind a loose bundle that merely arrived earlier.
// When off, bundles execute in arrival order (FIFO). Safe to flip at any
// time; it affects batches drained after the call.
func (e *Engine) SetEDF(on bool) { e.queue.fifo.Store(!on) }

// SetBatchWindow sets the max-batch-window: how long the dispatcher holds
// a drain open after the batch's first request, trading latency (every
// queued request waits up to d longer) for throughput (larger fused
// bundles, and bursts land in one EDF-ordered batch). 0 — the default —
// restores drain-what-accumulated dispatch. Safe to change at any time.
func (e *Engine) SetBatchWindow(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.queue.windowNs.Store(int64(d))
}

// SetQueueCapacity bounds the engine's submission queue. The bound can
// only be set before the dispatcher starts — i.e. before the engine's
// first Submit (for Set shards: before the set's first Submit, which
// starts every shard's dispatcher together). A later call returns
// ErrQueueStarted and leaves the live queue untouched: the channel is
// already sized and handed to the dispatcher, so re-applying would race
// in-flight submissions.
func (e *Engine) SetQueueCapacity(n int) error {
	if n < 1 {
		n = 1
	}
	q := &e.queue
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.ch != nil {
		return fmt.Errorf("iatf: SetQueueCapacity(%d): %w (capacity %d)", n, ErrQueueStarted, cap(q.ch))
	}
	q.capacity = n
	return nil
}

// resetWindow clears the windowed monitoring state: the queue-depth
// high-water mark and the queue-wait histogram. Lifetime counters
// (submitted, dispatches, ...) are untouched.
func (q *submitQueue) resetWindow() {
	q.depthHW.Store(0)
	q.waitHist.Reset()
}

// ResetShapeStats zeroes the engine's windowed observability state: the
// per-shape series, the SnapshotDelta baseline, the queue-depth
// high-water mark and the queue-wait histogram — so windowed monitoring
// after a reset reports only post-reset maxima.
func (e *Engine) ResetShapeStats() {
	e.obs.Reset()
	e.queue.resetWindow()
}

// start lazily creates the queue channel and dispatcher goroutine.
func (q *submitQueue) start(e *Engine) {
	q.startOnce.Do(func() {
		q.mu.Lock()
		if q.capacity <= 0 {
			q.capacity = DefaultQueueCapacity
		}
		q.ch = make(chan *asyncReq, q.capacity)
		q.mu.Unlock()
		go e.dispatchLoop()
	})
}

// Submit enqueues one request and returns its Future. The operands must
// not be mutated until the future resolves. If the queue is idle the
// request executes synchronously on the caller (same latency as Run);
// otherwise it joins the queue, where the dispatcher may coalesce it
// with concurrent same-problem requests into one fused dispatch. A full
// queue returns ErrQueueFull; a context already done returns ctx.Err().
// In both failure cases the returned Future is nil.
func (e *Engine) Submit(ctx context.Context, op OpDesc, operands ...Operand) (*Future, error) {
	return e.SubmitSpanned(ctx, op, nil, operands...)
}

// SubmitSpanned is Submit with a per-request span sink: when sink is
// non-nil the request always carries a lifecycle span (even with no
// engine-level sink installed) and sink receives it after the request
// resolves — including rejection and cancellation outcomes. sink runs on
// whichever goroutine resolves the request and must copy the span if it
// retains it.
func (e *Engine) SubmitSpanned(ctx context.Context, op OpDesc, sink obs.SpanFunc, operands ...Operand) (*Future, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q := &e.queue
	q.start(e)
	r := &asyncReq{ctx: ctx, op: op, fut: newFuture(), sink: sink}
	r.nops = copy(r.ops[:], operands)
	r.deadline, r.hasDL = ctx.Deadline()
	// Span start = submission time, so queued requests attribute the gap
	// to PhaseQueueWait.
	r.sp = e.obs.StartSpan(sink != nil || e.forceSpan(&op))
	stampSpan(r.sp, &op)
	if r.sp != nil && r.hasDL {
		r.sp.Deadline = r.deadline.Sub(r.sp.Start)
	}
	// Idle fast path: nothing queued and no dispatch in flight — run on
	// the submitting goroutine so a lone caller pays no queue round-trip.
	if len(q.ch) == 0 && q.busy.CompareAndSwap(false, true) {
		q.submitted.Add(1)
		q.inline.Add(1)
		err := e.run(r.op, r.sp, r.ops[:r.nops]...)
		q.busy.Store(false)
		e.obs.FinishSpan(r.sp, err, r.sink)
		r.fut.resolve(err)
		return r.fut, nil
	}
	r.enq = time.Now()
	select {
	case q.ch <- r:
		q.submitted.Add(1)
		// Pending = buffered + the dispatcher's current batch. The request
		// just sent may already be in the dispatcher's hands (direct
		// handoff empties the buffer before inflight is stamped), so the
		// floor is 1: at this instant at least our own request is pending.
		if d := len(q.ch) + int(q.inflight.Load()); d > 0 {
			q.noteDepth(d)
		} else {
			q.noteDepth(1)
		}
		return r.fut, nil
	default:
		q.rejected.Add(1)
		err := fmt.Errorf("iatf: %v: %w (capacity %d)", op.Kind, ErrQueueFull, cap(q.ch))
		if r.sp != nil {
			r.sp.Op = op.Kind.String()
		}
		e.obs.FinishSpan(r.sp, err, r.sink)
		return nil, err
	}
}

// noteDepth raises the queue-depth high-water mark to depth (CAS-max).
func (q *submitQueue) noteDepth(depth int) {
	for {
		old := q.depthHW.Load()
		if int64(depth) <= old || q.depthHW.CompareAndSwap(old, int64(depth)) {
			return
		}
	}
}

// stealPollInterval is how often an idle set-attached dispatcher checks
// sibling queues for stealable work. The poll itself is allocation-free
// (a reused timer and batch slice), so a fine interval keeps steal
// latency low without disturbing the warm-path allocation budget.
const stealPollInterval = 200 * time.Microsecond

// dispatchLoop is the per-engine dispatcher: block for one request,
// drain everything else that accumulated, execute the batch. When the
// engine is an EngineSet shard (q.steal != nil) the wait is a timed poll
// instead of a plain block: an idle dispatcher periodically pulls queued
// requests from the deepest sibling queue and executes them here —
// bounded work stealing, so one hot shard cannot serialize the set while
// its siblings idle.
func (e *Engine) dispatchLoop() {
	q := &e.queue
	var batch []*asyncReq
	var timer *time.Timer
	if q.steal != nil {
		timer = time.NewTimer(stealPollInterval)
		defer timer.Stop()
	}
	for {
		var r *asyncReq
		if timer == nil {
			var ok bool
			if r, ok = <-q.ch; !ok {
				return
			}
		} else {
			select {
			case r2, ok := <-q.ch:
				if !ok {
					return
				}
				r = r2
			case <-timer.C:
				timer.Reset(stealPollInterval)
				// Only steal while genuinely idle: own queue empty and no
				// inline dispatch in flight.
				if len(q.ch) != 0 || q.busy.Load() {
					continue
				}
				batch = batch[:0]
				if n := q.steal(&batch); n > 0 {
					q.stolenBatches.Add(1)
					q.stolenReqs.Add(uint64(n))
					q.busy.Store(true)
					q.inflight.Store(int64(len(batch)))
					e.runBatch(batch)
					q.inflight.Store(0)
					q.busy.Store(false)
					for i := range batch {
						batch[i] = nil
					}
				}
				continue
			}
		}
		q.busy.Store(true)
		batch = append(batch[:0], r)
		// inflight tracks the batch as it accumulates, not just while it
		// executes: receiving moves requests out of the channel, and without
		// this the queue would look empty to admission control for the whole
		// window + execution of a deep backlog.
		q.inflight.Store(1)
		// Max-batch-window: hold the drain open so a burst — and any
		// tight-deadline request inside it — lands in ONE drained batch for
		// the EDF pass to order. busy is already set, so submissions during
		// the window skip the inline fast path and join this batch.
		if w := time.Duration(q.windowNs.Load()); w > 0 {
			wt := time.NewTimer(w)
		window:
			for {
				select {
				case r2, ok := <-q.ch:
					if !ok {
						break window
					}
					batch = append(batch, r2)
					q.inflight.Store(int64(len(batch)))
				case <-wt.C:
					break window
				}
			}
			wt.Stop()
		}
	drain:
		for {
			select {
			case r2 := <-q.ch:
				batch = append(batch, r2)
				q.inflight.Store(int64(len(batch)))
			default:
				break drain
			}
		}
		if h := q.testHook; h != nil {
			h(len(batch))
		}
		e.runBatch(batch)
		q.inflight.Store(0)
		q.busy.Store(false)
		// Drop request references so resolved futures and their operands
		// are collectible while the dispatcher idles.
		for i := range batch {
			batch[i] = nil
		}
	}
}

// coalesceKey is the full problem identity two requests must share to be
// fused: the op descriptor including scalars and the worker request,
// plus every operand's dtype and dimensions. Batch counts are free to
// differ — fusing concatenates them.
type coalesceKey struct {
	kind           OpKind
	dt             vec.DType
	transA, transB matrix.Trans
	side           matrix.Side
	uplo           matrix.Uplo
	diag           matrix.Diag
	alpha, beta    complex128
	workers        int
	nops           int
	rows, cols     [3]int

	// chain partitions chain submissions: nonzero for chains (the fuse
	// identity hash over the chain descriptor, scalars and workers),
	// zero for ordinary requests — the two kinds never share a bundle.
	chain uint64
}

// opName names a request for span/error reporting: the op kind, or
// "CHAIN" for chain submissions (whose op field holds only stage 0).
func (r *asyncReq) opName() string {
	if r.chain != nil {
		return "CHAIN"
	}
	return r.op.Kind.String()
}

func keyOf(r *asyncReq) coalesceKey {
	if r.chain != nil {
		return coalesceKey{chain: r.chainHash}
	}
	k := coalesceKey{
		kind: r.op.Kind, transA: r.op.TransA, transB: r.op.TransB,
		side: r.op.Side, uplo: r.op.Uplo, diag: r.op.Diag,
		alpha: r.op.Alpha, beta: r.op.Beta, workers: r.op.Workers,
		nops: r.nops,
	}
	for i := 0; i < r.nops; i++ {
		if !r.ops[i].valid() {
			// Malformed requests keep a zero dim signature; they fail
			// validation identically fused or alone.
			continue
		}
		k.dt = r.ops[i].DT
		k.rows[i], k.cols[i] = r.ops[i].rows(), r.ops[i].cols()
	}
	return k
}

// runBatch resolves cancelled requests, partitions the rest by problem
// identity and executes each bundle — in earliest-deadline-first order
// unless EDF is disabled (then arrival order, the FIFO drain).
func (e *Engine) runBatch(batch []*asyncReq) {
	q := &e.queue
	var order []coalesceKey
	buckets := make(map[coalesceKey][]*asyncReq, len(batch))
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			q.cancelled.Add(1)
			if r.sp != nil {
				r.sp.Op = r.opName()
				r.sp.Phases[obs.PhaseQueueWait] = time.Since(r.enq)
			}
			e.obs.FinishSpan(r.sp, err, r.sink)
			r.fut.resolve(err)
			continue
		}
		k := keyOf(r)
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], r)
	}
	if !q.fifo.Load() && len(order) > 1 {
		orderByDeadline(order, buckets)
	}
	for _, k := range order {
		e.runBundle(buckets[k])
	}
}

// orderByDeadline sorts the bundle execution order EDF-style: bundles
// with a context deadline run before bundles without one, earlier
// deadlines first; the highest OpDesc.Priority in the bundle breaks ties
// (and orders the no-deadline bundles among themselves), and arrival
// order breaks what remains (stable sort). Reordering whole bundles is
// result-neutral: bundles share no operands with each other — only the
// order of independent fused dispatches changes, never their content.
func orderByDeadline(order []coalesceKey, buckets map[coalesceKey][]*asyncReq) {
	type rank struct {
		hasDL bool
		dl    time.Time
		prio  int
	}
	ranks := make(map[coalesceKey]rank, len(order))
	for _, k := range order {
		var rk rank
		for i, r := range buckets[k] {
			if r.hasDL && (!rk.hasDL || r.deadline.Before(rk.dl)) {
				rk.hasDL, rk.dl = true, r.deadline
			}
			if i == 0 || r.op.Priority > rk.prio {
				rk.prio = r.op.Priority
			}
		}
		ranks[k] = rk
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := ranks[order[i]], ranks[order[j]]
		if a.hasDL != b.hasDL {
			return a.hasDL
		}
		if a.hasDL && !a.dl.Equal(b.dl) {
			return a.dl.Before(b.dl)
		}
		return a.prio > b.prio
	})
}

// runBundle executes one same-problem bundle: a lone request runs
// directly on its own operands; two or more run as one fused dispatch.
// Queue wait is stamped here — at bundle start, not drain time — so a
// request's recorded phases sum to its observed end-to-end latency even
// when earlier bundles of the same drained batch ran first.
func (e *Engine) runBundle(reqs []*asyncReq) {
	q := &e.queue
	// Fuse-time expiry check: a bundle late in a drained batch waited
	// behind every earlier bundle's execution, so a deadline that was live
	// at the dequeue check may be dead by now. Dead requests resolve with
	// ctx.Err() here, without consuming fused-batch slots (the fused
	// super-batch is built only from the survivors).
	live := reqs[:0]
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			q.cancelled.Add(1)
			if r.sp != nil {
				r.sp.Op = r.opName()
				r.sp.Phases[obs.PhaseQueueWait] = time.Since(r.enq)
			}
			e.obs.FinishSpan(r.sp, err, r.sink)
			r.fut.resolve(err)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	reqs = live
	q.dispatches.Add(1)
	now := time.Now()
	for _, r := range reqs {
		wait := now.Sub(r.enq)
		q.waitHist.Observe(wait)
		if r.sp != nil {
			r.sp.Phases[obs.PhaseQueueWait] += wait
		}
	}
	if reqs[0].chain != nil {
		e.runChainBundle(reqs)
		return
	}
	if len(reqs) == 1 {
		r := reqs[0]
		err := e.run(r.op, r.sp, r.ops[:r.nops]...)
		e.obs.FinishSpan(r.sp, err, r.sink)
		r.fut.resolve(err)
		return
	}
	q.coalesced.Add(uint64(len(reqs) - 1))
	for {
		old := q.maxFused.Load()
		if int64(len(reqs)) <= old || q.maxFused.CompareAndSwap(old, int64(len(reqs))) {
			break
		}
	}
	err := e.runFused(reqs)
	for _, r := range reqs {
		r.fut.resolve(err)
	}
}

// writtenOperand returns the BLAS argument position the op writes (the
// operand whose fused result must be scattered back per request).
func writtenOperand(k OpKind) int {
	if k == OpGEMM {
		return 2 // C
	}
	return 1 // TRSM/TRMM's B, SYRK's C
}

// runFused concatenates the bundle's operands group-wise into one
// super-request, executes it through the normal dispatch path, and
// scatters the written operand's groups back into each request's own
// storage. Group data is untouched by the concatenation, so results are
// bit-identical to executing the requests serially.
//
// Span emission: the fused dispatch itself carries a parent span
// (Fused = N, phases Fuse/Plan/Pack/Compute/Scatter); each rider's child
// span copies the parent's shared phases alongside its own queue wait
// and links via ParentID, so a slow Do is attributable even when it
// executed as one rider of a coalesced dispatch.
func (e *Engine) runFused(reqs []*asyncReq) error {
	lead := reqs[0]
	// The parent span is forced whenever any rider carries a span, so
	// children never lack the dispatch they rode in.
	force := false
	for _, r := range reqs {
		if r.sp != nil {
			force = true
			break
		}
	}
	parent := e.obs.StartSpan(force)
	if parent != nil {
		// The parent carries every traced rider's id, so a trace lookup
		// by any rider surfaces the shared dispatch it rode in.
		for _, r := range reqs {
			if r.op.Trace != "" {
				parent.Riders = append(parent.Riders, r.op.Trace)
			}
		}
	}
	var t0 time.Time
	if parent != nil {
		t0 = time.Now()
	}
	fused := make([]Operand, lead.nops)
	for i := range fused {
		src := lead.ops[i]
		if src.F32 != nil {
			fused[i] = Operand{DT: src.DT, F32: fuseCompacts(src.DT, partsF32(reqs, i))}
		} else {
			fused[i] = Operand{DT: src.DT, F64: fuseCompacts(src.DT, partsF64(reqs, i))}
		}
	}
	parent.Mark(obs.PhaseFuse, t0)
	err := e.run(lead.op, parent, fused...)
	if err == nil {
		if parent != nil {
			t0 = time.Now()
		}
		wi := writtenOperand(lead.op.Kind)
		if lead.ops[wi].F32 != nil {
			scatterCompacts(fused[wi].F32, partsF32(reqs, wi))
		} else {
			scatterCompacts(fused[wi].F64, partsF64(reqs, wi))
		}
		parent.Mark(obs.PhaseScatter, t0)
	}
	if parent != nil {
		parent.Fused = len(reqs)
		finishFusedSpans(e, parent, reqs, err)
	}
	e.obs.FinishSpan(parent, err, nil)
	return err
}

// finishFusedSpans completes each rider's child span: the parent's
// descriptor and shared phases (fuse through scatter) plus the rider's
// own queue wait and batch count, linked by ParentID. Runs before the
// parent is finished (and recycled), so the copies are safe.
func finishFusedSpans(e *Engine, parent *obs.Span, reqs []*asyncReq, err error) {
	wi := writtenOperand(reqs[0].op.Kind)
	for _, r := range reqs {
		sp := r.sp
		if sp == nil {
			continue
		}
		sp.ParentID = parent.ID
		sp.Op, sp.DType, sp.Mode = parent.Op, parent.DType, parent.Mode
		sp.M, sp.N, sp.K = parent.M, parent.N, parent.K
		sp.Workers = parent.Workers
		sp.PrepackHits, sp.PrepackBuilds = parent.PrepackHits, parent.PrepackBuilds
		if r.ops[wi].valid() {
			sp.Count = r.ops[wi].count()
		}
		for p := obs.PhaseFuse; p < obs.PhaseCount; p++ {
			sp.Phases[p] = parent.Phases[p]
		}
		e.obs.FinishSpan(sp, err, r.sink)
	}
}

func partsF32(reqs []*asyncReq, idx int) []*layout.Compact[float32] {
	out := make([]*layout.Compact[float32], len(reqs))
	for i, r := range reqs {
		out[i] = r.ops[idx].F32
	}
	return out
}

func partsF64(reqs []*asyncReq, idx int) []*layout.Compact[float64] {
	out := make([]*layout.Compact[float64], len(reqs))
	for i, r := range reqs {
		out[i] = r.ops[idx].F64
	}
	return out
}

// fuseCompacts concatenates same-shape compact batches at interleave-
// group granularity. The fused count is totalGroups·P: each part's
// padding lanes stay padding lanes of the fused batch at the same group
// offsets, so kernels compute exactly what they would have per part.
func fuseCompacts[E vec.Float](dt vec.DType, parts []*layout.Compact[E]) *layout.Compact[E] {
	first := parts[0]
	total := 0
	for _, p := range parts {
		total += p.Groups()
	}
	out := layout.NewCompact[E](dt, total*first.P(), first.Rows, first.Cols)
	off := 0
	for _, p := range parts {
		off += copy(out.Data[off:], p.Data)
	}
	return out
}

// scatterCompacts copies the written operand's group ranges back into
// each request's own storage and retires any cached packed images of the
// previous contents.
func scatterCompacts[E vec.Float](fused *layout.Compact[E], parts []*layout.Compact[E]) {
	off := 0
	for _, p := range parts {
		copy(p.Data, fused.Data[off:off+len(p.Data)])
		off += len(p.Data)
		p.Invalidate()
	}
}
