package iatf

import "fmt"

// Grouped interfaces: real workloads often hold several groups of
// matrices, each group internally fixed-size but sizes differing between
// groups (the group_count style of MKL's gemm_batch and the Batched BLAS
// proposal). IATF's framework is per-fixed-size by design; the grouped
// calls plan and execute each group independently, reusing the memoized
// install-time kernels across groups that share shapes.

// GEMMGroup is one fixed-size group of a grouped GEMM call:
// C = Alpha·op(A)·op(B) + Beta·C over the group's batch.
type GEMMGroup[T Scalar] struct {
	TransA, TransB Trans
	Alpha, Beta    T
	A, B, C        *Compact[T]
}

// GEMMGrouped executes every group, splitting `workers` worker-pool
// participants within each group's batch (workers <= 0 means auto,
// GOMAXPROCS). It stops at the first error, reporting the group index.
// Groups sharing a shape reuse one cached execution plan.
func GEMMGrouped[T Scalar](workers int, groups []GEMMGroup[T]) error {
	for i, g := range groups {
		if err := GEMMParallel(workers, g.TransA, g.TransB, g.Alpha, g.A, g.B, g.Beta, g.C); err != nil {
			return fmt.Errorf("iatf: group %d: %w", i, err)
		}
	}
	return nil
}

// TRSMGroup is one fixed-size group of a grouped TRSM call.
type TRSMGroup[T Scalar] struct {
	Side   Side
	Uplo   Uplo
	TransA Trans
	Diag   Diag
	Alpha  T
	A, B   *Compact[T]
}

// TRSMGrouped executes every group of triangular solves (workers <= 0
// means auto, GOMAXPROCS).
func TRSMGrouped[T Scalar](workers int, groups []TRSMGroup[T]) error {
	for i, g := range groups {
		if err := TRSMParallel(workers, g.Side, g.Uplo, g.TransA, g.Diag, g.Alpha, g.A, g.B); err != nil {
			return fmt.Errorf("iatf: group %d: %w", i, err)
		}
	}
	return nil
}
