package iatf

import (
	"context"
	"fmt"
)

// Grouped interfaces: real workloads often hold several groups of
// matrices, each group internally fixed-size but sizes differing between
// groups (the group_count style of MKL's gemm_batch and the Batched BLAS
// proposal). IATF's framework is per-fixed-size by design; the grouped
// calls lower each group onto one Request and run it through the Do
// dispatch path, reusing the memoized install-time kernels and cached
// plans across groups that share shapes. A failing group is reported
// with a typed *GroupError wrapping the engine-taxonomy cause, so both
// errors.As (for the index) and errors.Is (for ErrShape etc.) work.

// GroupError reports which group of a grouped call failed and why. It
// wraps the underlying engine error: errors.Is(err, iatf.ErrShape) et
// al. see through it.
type GroupError struct {
	Op    string // routine name, e.g. "GEMM"
	Index int    // failing group's position in the groups slice
	Err   error  // the underlying typed error
}

// Error formats the group index ahead of the cause.
func (e *GroupError) Error() string {
	return fmt.Sprintf("iatf: %s group %d: %v", e.Op, e.Index, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *GroupError) Unwrap() error { return e.Err }

// groupErr wraps a per-group failure.
func groupErr(op string, i int, err error) error {
	if err == nil {
		return nil
	}
	return &GroupError{Op: op, Index: i, Err: err}
}

// GEMMGroup is one fixed-size group of a grouped GEMM call:
// C = Alpha·op(A)·op(B) + Beta·C over the group's batch.
type GEMMGroup[T Scalar] struct {
	TransA, TransB Trans
	Alpha, Beta    T
	A, B, C        *Compact[T]
}

// GEMMGrouped executes every group as one engine submission through the
// request path, splitting `workers` worker-pool participants within each
// group's batch (workers <= 0 means auto, GOMAXPROCS). It stops at the
// first error, reporting the group index via *GroupError. Groups sharing
// a shape reuse one cached execution plan.
func GEMMGrouped[T Scalar](workers int, groups []GEMMGroup[T]) error {
	ctx := context.Background()
	for i, g := range groups {
		err := Do(ctx, Request[T]{
			Op: OpGEMM, TransA: g.TransA, TransB: g.TransB,
			Alpha: g.Alpha, Beta: g.Beta, A: g.A, B: g.B, C: g.C,
		}, WithWorkers(workers))
		if err != nil {
			return groupErr("GEMM", i, err)
		}
	}
	return nil
}

// TRSMGroup is one fixed-size group of a grouped TRSM call.
type TRSMGroup[T Scalar] struct {
	Side   Side
	Uplo   Uplo
	TransA Trans
	Diag   Diag
	Alpha  T
	A, B   *Compact[T]
}

// TRSMGrouped executes every group of triangular solves (workers <= 0
// means auto, GOMAXPROCS), reporting a failing group via *GroupError.
func TRSMGrouped[T Scalar](workers int, groups []TRSMGroup[T]) error {
	ctx := context.Background()
	for i, g := range groups {
		err := Do(ctx, Request[T]{
			Op: OpTRSM, Side: g.Side, Uplo: g.Uplo, TransA: g.TransA,
			Diag: g.Diag, Alpha: g.Alpha, A: g.A, B: g.B,
		}, WithWorkers(workers))
		if err != nil {
			return groupErr("TRSM", i, err)
		}
	}
	return nil
}

// TRMMGroup is one fixed-size group of a grouped TRMM call.
type TRMMGroup[T Scalar] struct {
	Side   Side
	Uplo   Uplo
	TransA Trans
	Diag   Diag
	Alpha  T
	A, B   *Compact[T]
}

// TRMMGrouped executes every group of triangular multiplies (workers
// <= 0 means auto, GOMAXPROCS), reporting a failing group via
// *GroupError.
func TRMMGrouped[T Scalar](workers int, groups []TRMMGroup[T]) error {
	ctx := context.Background()
	for i, g := range groups {
		err := Do(ctx, Request[T]{
			Op: OpTRMM, Side: g.Side, Uplo: g.Uplo, TransA: g.TransA,
			Diag: g.Diag, Alpha: g.Alpha, A: g.A, B: g.B,
		}, WithWorkers(workers))
		if err != nil {
			return groupErr("TRMM", i, err)
		}
	}
	return nil
}

// SYRKGroup is one fixed-size group of a grouped SYRK call:
// C = Alpha·op(A)·op(A)ᵀ + Beta·C over the group's batch.
type SYRKGroup[T Scalar] struct {
	Uplo        Uplo
	Trans       Trans
	Alpha, Beta T
	A, C        *Compact[T]
}

// SYRKGrouped executes every group of symmetric rank-k updates (workers
// <= 0 means auto, GOMAXPROCS), reporting a failing group via
// *GroupError.
func SYRKGrouped[T Scalar](workers int, groups []SYRKGroup[T]) error {
	ctx := context.Background()
	for i, g := range groups {
		err := Do(ctx, Request[T]{
			Op: OpSYRK, Uplo: g.Uplo, TransA: g.Trans,
			Alpha: g.Alpha, Beta: g.Beta, A: g.A, C: g.C,
		}, WithWorkers(workers))
		if err != nil {
			return groupErr("SYRK", i, err)
		}
	}
	return nil
}
