// Package iatf is a compact batched BLAS for large groups of fixed-size
// small matrices, reproducing "IATF: An Input-Aware Tuning Framework for
// Compact BLAS Based on ARMv8 CPUs" (ICPP 2022).
//
// The library operates on batches of equally sized small matrices stored
// in the SIMD-friendly compact layout: element (i,j) of P consecutive
// matrices is interleaved so one vector register processes P matrices at
// once. Convert a conventional batch with Pack, run GEMM/TRSM on the
// compact handle, and Unpack the results:
//
//	batch := iatf.NewBatch[float64](16384, 8, 8) // 16384 8×8 matrices
//	// ... fill batch ...
//	a := iatf.Pack(batchA)
//	b := iatf.Pack(batchB)
//	c := iatf.Pack(batchC)
//	iatf.GEMM(iatf.NoTrans, iatf.NoTrans, 1.0, a, b, 1.0, c)
//	result := c.Unpack()
//
// Every call runs the paper's two-stage framework: the install-time stage
// (kernel templates, CMAR-optimal kernel sizes, instruction scheduling) is
// evaluated once per shape and memoized; the run-time stage picks packing
// kernels, L1-sized super-batches and an execution plan from the input
// matrix properties.
package iatf

import (
	"fmt"

	"iatf/internal/core"
	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// Scalar is the set of supported element types: the BLAS s, d, c and z
// types.
type Scalar = matrix.Scalar

// Trans selects op(A) for an operand.
type Trans = matrix.Trans

// Side selects which side of X the triangular matrix A appears on in TRSM.
type Side = matrix.Side

// Uplo selects the stored triangle of A in TRSM.
type Uplo = matrix.Uplo

// Diag declares whether A has an implicit unit diagonal in TRSM.
type Diag = matrix.Diag

// BLAS mode constants.
const (
	NoTrans   = matrix.NoTrans
	Transpose = matrix.Transpose
	Left      = matrix.Left
	Right     = matrix.Right
	Lower     = matrix.Lower
	Upper     = matrix.Upper
	NonUnit   = matrix.NonUnit
	Unit      = matrix.Unit
)

// Batch is a group of equally sized matrices in conventional column-major
// storage, back to back — the interchange format with the rest of a Go
// program.
type Batch[T Scalar] struct {
	inner *matrix.Batch[T]
}

// NewBatch allocates a zeroed batch of count rows×cols matrices.
func NewBatch[T Scalar](count, rows, cols int) *Batch[T] {
	return &Batch[T]{inner: matrix.NewBatch[T](count, rows, cols)}
}

// Count returns the number of matrices.
func (b *Batch[T]) Count() int { return b.inner.Count }

// Rows returns the per-matrix row count.
func (b *Batch[T]) Rows() int { return b.inner.Rows }

// Cols returns the per-matrix column count.
func (b *Batch[T]) Cols() int { return b.inner.Cols }

// At returns element (i, j) of matrix m.
func (b *Batch[T]) At(m, i, j int) T { return b.inner.Mat(m).At(i, j) }

// Set assigns element (i, j) of matrix m.
func (b *Batch[T]) Set(m, i, j int, x T) { b.inner.Mat(m).Set(i, j, x) }

// Data exposes the underlying storage: Count contiguous column-major
// matrices.
func (b *Batch[T]) Data() []T { return b.inner.Data }

// dtypeOf maps a scalar type onto its BLAS data type.
func dtypeOf[T Scalar]() vec.DType {
	var z T
	switch any(z).(type) {
	case float32:
		return vec.S
	case float64:
		return vec.D
	case complex64:
		return vec.C
	default:
		return vec.Z
	}
}

// Compact is a batch in the SIMD-friendly compact layout — the format the
// computing kernels consume. Obtain one with Pack and convert back with
// Unpack.
type Compact[T Scalar] struct {
	dt  vec.DType
	f32 *layout.Compact[float32]
	f64 *layout.Compact[float64]
}

// Pack converts a conventional batch into the compact layout.
func Pack[T Scalar](b *Batch[T]) *Compact[T] {
	dt := dtypeOf[T]()
	c := &Compact[T]{dt: dt}
	switch src := any(b.inner).(type) {
	case *matrix.Batch[float32]:
		c.f32 = layout.FromBatch(dt, src)
	case *matrix.Batch[float64]:
		c.f64 = layout.FromBatch(dt, src)
	case *matrix.Batch[complex64]:
		c.f32 = layout.FromBatchComplex[complex64, float32](dt, src)
	case *matrix.Batch[complex128]:
		c.f64 = layout.FromBatchComplex[complex128, float64](dt, src)
	}
	return c
}

// Unpack converts the compact batch back to conventional storage.
func (c *Compact[T]) Unpack() *Batch[T] {
	var out any
	switch {
	case c.f32 != nil && !c.dt.IsComplex():
		out = layout.ToBatch(c.f32)
	case c.f64 != nil && !c.dt.IsComplex():
		out = layout.ToBatch(c.f64)
	case c.f32 != nil:
		out = layout.ToBatchComplex[complex64](c.f32)
	default:
		out = layout.ToBatchComplex[complex128](c.f64)
	}
	return &Batch[T]{inner: out.(*matrix.Batch[T])}
}

// Count returns the number of matrices (padding excluded).
func (c *Compact[T]) Count() int {
	if c.f32 != nil {
		return c.f32.Count
	}
	return c.f64.Count
}

// Rows returns the per-matrix row count.
func (c *Compact[T]) Rows() int {
	if c.f32 != nil {
		return c.f32.Rows
	}
	return c.f64.Rows
}

// Cols returns the per-matrix column count.
func (c *Compact[T]) Cols() int {
	if c.f32 != nil {
		return c.f32.Cols
	}
	return c.f64.Cols
}

// Prepack opts the compact batch into packed-operand reuse: the engine
// caches the packed image this operand takes inside each execution plan,
// so the packing kernels run once per (operand, shape) instead of once
// per call — the pack-once pattern for operands reused across calls
// (fixed weights, a factored triangle). Operations that write an operand
// (GEMM's C, TRSM/TRMM's B, SYRK's C) invalidate its cached images
// automatically; results are bit-identical with or without Prepack.
// Idempotent and safe for concurrent use.
func (c *Compact[T]) Prepack() {
	if c.f32 != nil {
		c.f32.EnablePrepack()
	}
	if c.f64 != nil {
		c.f64.EnablePrepack()
	}
}

// Invalidate marks the batch's contents as changed, retiring any cached
// packed images so the next call re-packs the new contents. A no-op
// unless Prepack was called.
func (c *Compact[T]) Invalidate() {
	if c.f32 != nil {
		c.f32.Invalidate()
	}
	if c.f64 != nil {
		c.f64.Invalidate()
	}
}

// Clone returns a deep copy of the compact batch.
func (c *Compact[T]) Clone() *Compact[T] {
	out := &Compact[T]{dt: c.dt}
	if c.f32 != nil {
		out.f32 = c.f32.Clone()
	}
	if c.f64 != nil {
		out.f64 = c.f64.Clone()
	}
	return out
}

// scalarToComplex widens any supported scalar to complex128 for the
// planner.
func scalarToComplex[T Scalar](x T) complex128 {
	switch v := any(x).(type) {
	case float32:
		return complex(float64(v), 0)
	case float64:
		return complex(v, 0)
	case complex64:
		return complex128(v)
	case complex128:
		return v
	}
	return 0
}

// check rejects a nil/empty operand with the engine taxonomy, so
// errors.Is(err, ErrOperand) holds for nil-operand errors from every
// entry point, not just the ones dispatched through the engine.
func (c *Compact[T]) check(name string) error {
	if c == nil || (c.f32 == nil && c.f64 == nil) {
		return fmt.Errorf("iatf: operand %s: %w: nil or empty", name, ErrOperand)
	}
	return nil
}

// PackReplicated returns a compact batch of count logical copies of one
// rows×cols column-major matrix — the shared-operand pattern (a fixed
// operator applied to every matrix of a batch) — without materializing
// the copies in conventional storage first.
func PackReplicated[T Scalar](data []T, rows, cols, count int) (*Compact[T], error) {
	if len(data) < rows*cols {
		return nil, fmt.Errorf("iatf: PackReplicated needs %d elements, got %d", rows*cols, len(data))
	}
	if rows < 1 || cols < 1 || count < 1 {
		return nil, fmt.Errorf("iatf: invalid replicated batch %dx%d count %d", rows, cols, count)
	}
	dt := dtypeOf[T]()
	c := &Compact[T]{dt: dt}
	switch src := any(data).(type) {
	case []float32:
		c.f32 = layout.ReplicateReal(dt, src, rows, cols, count)
	case []float64:
		c.f64 = layout.ReplicateReal(dt, src, rows, cols, count)
	case []complex64:
		c.f32 = layout.ReplicateComplex[complex64, float32](dt, src, rows, cols, count)
	case []complex128:
		c.f64 = layout.ReplicateComplex[complex128, float64](dt, src, rows, cols, count)
	}
	return c, nil
}

// Preinstall runs the install-time stage ahead of time: every Table 1
// computing kernel is generated and schedule-optimized for reductions up
// to maxK and cached process-wide, so the first call on each shape pays
// no kernel-generation latency. Returns the cached kernel count.
// Entirely optional — kernels are otherwise generated lazily per shape.
func Preinstall(maxK int) (int, error) {
	return core.Preinstall(core.DefaultTuning(), maxK)
}
