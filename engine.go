package iatf

import (
	"iatf/internal/core"
	"iatf/internal/engine"
)

// Engine is the run-time execution engine every public op routes through:
// a sharded plan cache (so repeated shapes skip the run-time planning
// stage entirely), size-class pools for packing buffers, and a persistent
// worker pool for the *Parallel entry points. The package-level functions
// (GEMM, TRSM, ...) use the process-wide default engine; NewEngine builds
// a private one with its own plan cache and counters, which the *On
// variants (GEMMOn, TRSMOn, ...) accept.
type Engine struct {
	inner *engine.Engine
}

// EngineStats is a snapshot of engine counters: plan-cache hits/misses/
// entries (per engine), packing-buffer pool reuse, and worker-pool
// activity (the latter two are process-wide).
type EngineStats = engine.Stats

var defaultEng = &Engine{inner: engine.Default()}

// DefaultEngine returns the process-wide engine used by the package-level
// operations. Its Stats expose the serving counters:
//
//	s := iatf.DefaultEngine().Stats()
//	fmt.Println(s.PlanHits, s.PlanMisses, s.Buffers.Reuses)
func DefaultEngine() *Engine { return defaultEng }

// NewEngine constructs a private engine with the default tuning: an
// isolated plan cache and counters, for tests or multi-tenant serving.
func NewEngine() *Engine {
	return &Engine{inner: engine.New(core.DefaultTuning())}
}

// Stats returns the engine's current counters.
func (e *Engine) Stats() EngineStats { return e.inner.Stats() }

// operandOf type-erases a compact batch for the engine dispatch path.
// A nil batch maps to the zero Operand, which the engine rejects with a
// named error.
func operandOf[T Scalar](c *Compact[T]) engine.Operand {
	if c == nil {
		return engine.Operand{}
	}
	return engine.Operand{DT: c.dt, F32: c.f32, F64: c.f64}
}
