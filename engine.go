package iatf

import (
	"time"

	"iatf/internal/engine"
	"iatf/internal/obs"
)

// Typed validation taxonomy: every malformed call is rejected at the
// engine boundary with an error that names the op and the offending
// operand and wraps one of these sentinels, so callers can branch with
// errors.Is(err, iatf.ErrShape) instead of string matching.
var (
	ErrShape   = engine.ErrShape   // operand dimensions inconsistent with the op
	ErrCount   = engine.ErrCount   // operand batch counts disagree
	ErrDType   = engine.ErrDType   // operand element types disagree
	ErrOperand = engine.ErrOperand // nil/empty operand or wrong arity
)

// ShapeStats is the per-shape rolling series the engine keeps for every
// observed (op, dtype, mode, shape): calls, latency quantiles, achieved
// GFLOPS vs the plan's CMAR-predicted ceiling, plan-cache outcomes and
// the plan's input-aware decisions.
type ShapeStats = obs.ShapeSnapshot

// TraceEvent is one traced dispatch: the problem descriptor, plan-cache
// outcome, worker split and the assembled command queue (packing kernels,
// tile/kernel sequence, super-batch size) of one interleave group.
type TraceEvent = obs.TraceEvent

// TraceCommand is one command-queue entry of a TraceEvent.
type TraceCommand = obs.Command

// Engine is the run-time execution engine every public op routes through:
// a sharded plan cache (so repeated shapes skip the run-time planning
// stage entirely), size-class pools for packing buffers, and a persistent
// worker pool for the *Parallel entry points. The package-level functions
// (GEMM, TRSM, ...) use the process-wide default engine; NewEngine builds
// a private one with its own plan cache and counters, which the *On
// variants (GEMMOn, TRSMOn, ...) accept.
type Engine struct {
	inner *engine.Engine
}

// EngineStats is a snapshot of engine counters: plan-cache hits/misses/
// entries (per engine), packing-buffer pool reuse, worker-pool activity
// (the latter two are process-wide), and the submission queue's
// coalescing counters in EngineStats.Queue.
type EngineStats = engine.Stats

// QueueStats is the submission-queue slice of EngineStats: submissions,
// inline fast-path executions, dispatches, coalesced riders, the largest
// fused bundle, cancellations, backpressure rejections, and the queue's
// current depth and capacity.
type QueueStats = engine.QueueStats

var defaultEng = &Engine{inner: engine.Default()}

// DefaultEngine returns the process-wide engine used by the package-level
// operations. Its Stats expose the serving counters:
//
//	s := iatf.DefaultEngine().Stats()
//	fmt.Println(s.PlanHits, s.PlanMisses, s.Buffers.Reuses)
func DefaultEngine() *Engine { return defaultEng }

// NewEngine constructs a private engine — an isolated plan cache and
// counters, for tests or multi-tenant serving — configured by options:
//
//	eng := iatf.NewEngine(
//	    iatf.WithQueueCapacity(4096),
//	    iatf.WithPlanStore(""), // warm-start from the default store dir
//	)
//
// With no options the engine uses the default tuning (Kunpeng 920
// profile) and no persistent store.
func NewEngine(opts ...EngineOption) *Engine {
	cfg := resolveConfig(opts)
	e := engine.New(cfg.tun)
	cfg.apply(e)
	return &Engine{inner: e}
}

// Stats returns the engine's current counters, including the per-shape
// series in Stats.Shapes (ordered by call count).
func (e *Engine) Stats() EngineStats { return e.inner.Stats() }

// SetQueueCapacity bounds the engine's async submission queue (default
// 1024 requests). Submissions beyond the bound fail fast with
// ErrQueueFull.
//
// The bound must be set before the engine's first Submit (or Do with
// WithAsync): once the dispatcher has started the live queue cannot be
// resized, and the call fails with an error wrapping ErrQueueStarted,
// leaving the running queue untouched. Branch with
// errors.Is(err, iatf.ErrQueueStarted).
//
// Deprecated: pass WithQueueCapacity to NewEngine instead — a
// construction-time bound cannot race the dispatcher start.
func (e *Engine) SetQueueCapacity(n int) error { return e.inner.SetQueueCapacity(n) }

// SetEDF toggles deadline-ordered dispatch on the engine's async queue.
// When on (the default) each drained batch's bundles execute in earliest-
// context-deadline order, with WithPriority classes breaking ties, so a
// tight-deadline request never waits behind a loose bundle that merely
// arrived earlier. Off restores the FIFO drain. Safe to flip at any time.
//
// Deprecated: prefer WithEDF at construction; SetEDF remains for
// runtime flips.
func (e *Engine) SetEDF(on bool) { e.inner.SetEDF(on) }

// SetBatchWindow sets the dispatcher's max-batch-window: after a batch's
// first request is received, the drain stays open for d so a burst — and
// any tight-deadline request inside it — lands in one EDF-ordered batch.
// Larger windows trade queue latency for larger fused bundles; 0 (the
// default) drains only what already accumulated. Safe to change at any
// time.
//
// Deprecated: prefer WithBatchWindow at construction; SetBatchWindow
// remains for runtime adjustment.
func (e *Engine) SetBatchWindow(d time.Duration) { e.inner.SetBatchWindow(d) }

// SetTrace installs a trace hook on the engine: fn receives the
// assembled command queue of sampled calls (every nth; every == 1 traces
// every call, every == 0 only calls marked by ForceTrace). fn runs
// synchronously on the dispatching goroutine before execution — keep it
// cheap or hand off. fn == nil removes the hook.
//
//	eng.SetTrace(func(ev iatf.TraceEvent) { log.Printf("%+v", ev) }, 0)
//	eng.ForceTrace(1) // trace exactly the next call
func (e *Engine) SetTrace(fn func(TraceEvent), every uint64) {
	if fn == nil {
		e.inner.Obs().SetTrace(nil, every)
		return
	}
	e.inner.Obs().SetTrace(obs.TraceFunc(fn), every)
}

// ForceTrace marks the next n calls on this engine for tracing
// regardless of the sampling interval (a hook must be installed).
func (e *Engine) ForceTrace(n int) { e.inner.Obs().ForceTrace(n) }

// operandOf type-erases a compact batch for the engine dispatch path.
// A nil batch maps to the zero Operand, which the engine rejects with a
// named error.
func operandOf[T Scalar](c *Compact[T]) engine.Operand {
	if c == nil {
		return engine.Operand{}
	}
	return engine.Operand{DT: c.dt, F32: c.f32, F64: c.f64}
}
