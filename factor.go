package iatf

import (
	"fmt"

	"iatf/internal/core"
	"iatf/internal/engine"
)

// The compact batched factorizations route through the engine's factor
// dispatch path like every level-3 op: calls are validated with the
// typed taxonomy (ErrShape/ErrDType/ErrOperand), counted in the
// plan cache, and observed in the per-shape series ("LU", "CHOL",
// "LUPIV" ops in iatf-info -engine).

// LU factors every matrix of the compact batch in place into L\U
// (Doolittle: unit lower triangle below the diagonal, upper triangle with
// the diagonal — no pivoting, intended for the diagonally dominant blocks
// batched solvers feed it). The returned info slice holds one code per
// matrix: 0 on success, k+1 if pivot column k was exactly zero.
//
// Together with LUSolve this extends the framework with LAPACK-style
// compact kernels (cf. the compact BLAS/LAPACK design the paper builds
// on).
func LU[T Scalar](a *Compact[T]) ([]int, error) {
	return LUParallel(1, a)
}

// LUParallel is LU with `workers` participants from the persistent worker
// pool splitting the batch. workers <= 0 means auto (GOMAXPROCS);
// workers == 1 runs serially.
func LUParallel[T Scalar](workers int, a *Compact[T]) ([]int, error) {
	return DefaultEngine().inner.RunFactor(
		engine.OpDesc{Kind: engine.OpLU, Workers: workers}, operandOf(a))
}

// LUSolve solves A·X = B for every matrix of the batch, where a holds
// the LU factors produced by LU. B is overwritten with X.
func LUSolve[T Scalar](a, b *Compact[T]) error {
	if err := TRSM(Left, Lower, NoTrans, Unit, T(1), a, b); err != nil {
		return fmt.Errorf("iatf: LU forward solve: %w", err)
	}
	if err := TRSM(Left, Upper, NoTrans, NonUnit, T(1), a, b); err != nil {
		return fmt.Errorf("iatf: LU backward solve: %w", err)
	}
	return nil
}

// Cholesky factors every matrix of the compact batch in place into its
// lower Cholesky factor L (A = L·Lᵀ; the strict upper triangle is left
// untouched). Real element types only (errors.Is(err, ErrDType)
// otherwise). info codes are per matrix: 0 on success, k+1 at the first
// non-positive pivot.
func Cholesky[T Scalar](a *Compact[T]) ([]int, error) {
	return CholeskyParallel(1, a)
}

// CholeskyParallel is Cholesky with `workers` participants from the
// persistent worker pool splitting the batch. workers <= 0 means auto
// (GOMAXPROCS); workers == 1 runs serially.
func CholeskyParallel[T Scalar](workers int, a *Compact[T]) ([]int, error) {
	return DefaultEngine().inner.RunFactor(
		engine.OpDesc{Kind: engine.OpCholesky, Workers: workers}, operandOf(a))
}

// CholeskySolve solves A·X = B for every matrix of the batch, where a
// holds the Cholesky factors produced by Cholesky. B is overwritten.
func CholeskySolve[T Scalar](a, b *Compact[T]) error {
	if err := TRSM(Left, Lower, NoTrans, NonUnit, T(1), a, b); err != nil {
		return fmt.Errorf("iatf: Cholesky forward solve: %w", err)
	}
	if err := TRSM(Left, Lower, Transpose, NonUnit, T(1), a, b); err != nil {
		return fmt.Errorf("iatf: Cholesky backward solve: %w", err)
	}
	return nil
}

// Pivots is the opaque pivot record returned by LUPivoted.
type Pivots struct {
	inner *core.Pivots
}

// LUPivoted factors every matrix in place with partial pivoting
// (P·A = L·U) — the robust form for matrices that are not diagonally
// dominant. The returned Pivots must be passed to LUSolvePivoted.
func LUPivoted[T Scalar](a *Compact[T]) (*Pivots, []int, error) {
	return LUPivotedParallel(1, a)
}

// LUPivotedParallel is LUPivoted with `workers` participants from the
// persistent worker pool. workers <= 0 means auto (GOMAXPROCS);
// workers == 1 runs serially.
func LUPivotedParallel[T Scalar](workers int, a *Compact[T]) (*Pivots, []int, error) {
	p, info, err := DefaultEngine().inner.RunLUPiv(
		engine.OpDesc{Kind: engine.OpLUPiv, Workers: workers}, operandOf(a))
	if err != nil {
		return nil, nil, err
	}
	return &Pivots{inner: p}, info, nil
}

// LUSolvePivoted solves A·X = B for every matrix of the batch using the
// factors and pivots from LUPivoted. B is overwritten with X.
func LUSolvePivoted[T Scalar](a *Compact[T], piv *Pivots, b *Compact[T]) error {
	if piv == nil || piv.inner == nil {
		return fmt.Errorf("iatf: LUSolvePivoted: %w: nil pivot record", ErrOperand)
	}
	if err := a.check("A"); err != nil {
		return err
	}
	if err := b.check("B"); err != nil {
		return err
	}
	if b.Rows() != a.Rows() {
		return fmt.Errorf("iatf: LUSolvePivoted operand B: %w: B has %d rows, factors have %d",
			ErrShape, b.Rows(), a.Rows())
	}
	if b.Count() != a.Count() {
		return fmt.Errorf("iatf: LUSolvePivoted operand B: %w: B has %d, factors have %d",
			ErrCount, b.Count(), a.Count())
	}
	var err error
	if a.f32 != nil {
		err = core.ExecLUPivSolveNative(nil, a.f32, piv.inner, b.f32, 1)
	} else {
		err = core.ExecLUPivSolveNative(nil, a.f64, piv.inner, b.f64, 1)
	}
	if err != nil {
		return err
	}
	return LUSolve(a, b)
}

// Invert replaces every matrix of the compact batch with its inverse,
// computed via the pivoted LU factorization and a solve against the
// identity. Matrices reported singular in the returned info are left in
// an unspecified state.
func Invert[T Scalar](a *Compact[T]) ([]int, error) {
	if err := a.check("A"); err != nil {
		return nil, err
	}
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("iatf: Invert operand A: %w: square matrices required, got %dx%d",
			ErrShape, a.Rows(), a.Cols())
	}
	n, count := a.Rows(), a.Count()
	factors := a.Clone()
	piv, info, err := LUPivoted(factors)
	if err != nil {
		return nil, err
	}
	// Identity batch as the right-hand side.
	eye := NewBatch[T](count, n, n)
	one := scalarOne[T]()
	for m := 0; m < count; m++ {
		for i := 0; i < n; i++ {
			eye.Set(m, i, i, one)
		}
	}
	x := Pack(eye)
	if err := LUSolvePivoted(factors, piv, x); err != nil {
		return nil, err
	}
	if a.f32 != nil {
		copy(a.f32.Data, x.f32.Data)
	} else {
		copy(a.f64.Data, x.f64.Data)
	}
	a.Invalidate() // the batch contents changed in place
	return info, nil
}

// scalarOne returns 1 in the scalar type.
func scalarOne[T Scalar]() T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(float32(1)).(T)
	case float64:
		return any(float64(1)).(T)
	case complex64:
		return any(complex64(1)).(T)
	default:
		return any(complex128(1)).(T)
	}
}
