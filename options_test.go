package iatf

import (
	"math/rand"
	"testing"
	"time"
)

func TestEngineOptionsApply(t *testing.T) {
	e := NewEngine(
		WithQueueCapacity(7),
		WithEDF(false),
		WithBatchWindow(3*time.Millisecond),
	)
	s := e.Stats()
	if s.Queue.Capacity != 7 {
		t.Errorf("queue capacity = %d, want 7", s.Queue.Capacity)
	}
	if s.Queue.EDF {
		t.Error("EDF still on after WithEDF(false)")
	}
	if s.Queue.Window != 3*time.Millisecond {
		t.Errorf("batch window = %v, want 3ms", s.Queue.Window)
	}
}

func TestEngineSetOptionsApply(t *testing.T) {
	s := NewEngineSet(2, WithQueueCapacity(9), WithBatchWindow(time.Millisecond))
	for i := 0; i < s.Shards(); i++ {
		st := s.Shard(i).Stats()
		if st.Queue.Capacity != 9 || st.Queue.Window != time.Millisecond {
			t.Errorf("shard %d: capacity %d window %v", i, st.Queue.Capacity, st.Queue.Window)
		}
	}
}

func TestWithMachineProfileChangesFingerprint(t *testing.T) {
	kp := NewEngine() // default profile is Kunpeng 920
	gv := NewEngine(WithMachineProfile(Graviton2()))
	if kp.Fingerprint() == gv.Fingerprint() {
		t.Fatal("different profiles share a fingerprint")
	}
	if kp.Fingerprint() != NewEngine(WithMachineProfile(Kunpeng920())).Fingerprint() {
		t.Fatal("explicit default profile changed the fingerprint")
	}
}

func TestProfileNamed(t *testing.T) {
	for _, name := range ProfileNames() {
		if _, ok := ProfileNamed(name); !ok {
			t.Errorf("ProfileNamed(%q) not found", name)
		}
	}
	if _, ok := ProfileNamed("cray-1"); ok {
		t.Error("unknown profile resolved")
	}
}

// TestWithPlanStoreWarmStart is the public-API warm-start path: tune in
// one engine, save, construct a second engine over the same store dir,
// and require its first call to be a hit with zero misses.
func TestWithPlanStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	run := func(e *Engine) {
		t.Helper()
		a := Pack(randBatch[float64](rng, 16, 6, 6))
		b := Pack(randBatch[float64](rng, 16, 6, 6))
		c := Pack(randBatch[float64](rng, 16, 6, 6))
		if err := GEMMOn(e, 1, NoTrans, NoTrans, 1.0, a, b, 0.0, c); err != nil {
			t.Fatal(err)
		}
	}

	e1 := NewEngine(WithPlanStore(dir))
	if e1.StorePath() == "" {
		t.Fatal("store not attached")
	}
	run(e1)
	if err := e1.SaveStore(); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(WithPlanStore(dir))
	if got, want := e2.Fingerprint(), e1.Fingerprint(); got != want {
		t.Fatalf("fingerprints differ: %q vs %q", got, want)
	}
	s := e2.Stats()
	if s.Store.Loads != 1 || s.PlanHydrated == 0 {
		t.Fatalf("construction did not hydrate: %+v / hydrated %d", s.Store, s.PlanHydrated)
	}
	run(e2)
	s = e2.Stats()
	if s.PlanMisses != 0 || s.PlanHits != 1 {
		t.Fatalf("warm start first call: %+v", s)
	}
}

// TestParseTenantSpec pins the -tenant flag grammar shared by
// iatf-serve and iatf-monitor: name=class[:objective_ms[:target]].
func TestParseTenantSpec(t *testing.T) {
	valid := []struct {
		in   string
		name string
		obj  TenantObjective
	}{
		{"batch=-1", "batch", TenantObjective{Class: -1}},
		{"rt=5:10", "rt", TenantObjective{Class: 5, Objective: 10 * time.Millisecond, Target: 0.99}},
		{"rt=5:10:0.999", "rt", TenantObjective{Class: 5, Objective: 10 * time.Millisecond, Target: 0.999}},
		{"rt=5:0.5", "rt", TenantObjective{Class: 5, Objective: 500 * time.Microsecond, Target: 0.99}},
		{"free=0:0", "free", TenantObjective{}}, // zero objective → no target default
	}
	for _, tc := range valid {
		name, obj, err := ParseTenantSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseTenantSpec(%q): %v", tc.in, err)
		}
		if name != tc.name || obj != tc.obj {
			t.Fatalf("ParseTenantSpec(%q) = %q %+v, want %q %+v", tc.in, name, obj, tc.name, tc.obj)
		}
	}

	invalid := []string{
		"",                  // empty
		"rt",                // no =
		"=5",                // empty name
		"rt=",               // empty spec
		"rt=5:10:0.9:extra", // too many fields
		"rt=high",           // non-numeric class
		"rt=5:-1",           // negative objective
		"rt=5:x",            // non-numeric objective
		"rt=5:10:0",         // target at lower bound
		"rt=5:10:1",         // target at upper bound
		"rt=5:10:1.5",       // target out of range
		"rt=5:10:y",         // non-numeric target
	}
	for _, in := range invalid {
		if _, _, err := ParseTenantSpec(in); err == nil {
			t.Fatalf("ParseTenantSpec(%q) accepted, want error", in)
		}
	}
}
