// Public monitoring surface: request-lifecycle spans, the OpenMetrics
// exporter and the Chrome trace-event exporter. Where SetTrace answers
// "what command queue did the engine assemble", a span answers "where did
// this request's time go" — queue wait, coalesce/fuse, plan lookup,
// prepack resolution, compute, scatter — for every request, sync or
// async, with fused dispatches linking rider spans to the parent via
// ParentID. With no sink installed the whole subsystem costs one atomic
// load per call.

package iatf

import (
	"io"
	"net/http"

	"iatf/internal/engine"
	"iatf/internal/obs"
)

// Span is the lifecycle record of one request: identity and problem
// descriptor, monotonic start/end, per-phase durations (Span.Phases,
// indexed by the Phase* constants) and the prepack-cache interactions of
// the dispatch. Sinks receive spans synchronously and must copy them if
// they retain them — the span is recycled when the sink returns.
type Span = obs.Span

// SpanPhase indexes one slice of a request's lifetime in Span.Phases.
type SpanPhase = obs.Phase

// The request lifecycle phases, in submission order.
const (
	// PhaseQueueWait: submission until the request's bundle starts
	// executing (zero on the sync and idle-inline paths).
	PhaseQueueWait = obs.PhaseQueueWait
	// PhaseFuse: concatenating a coalesced bundle into one super-request.
	PhaseFuse = obs.PhaseFuse
	// PhasePlan: plan-cache lookup (or build, on a cold shape).
	PhasePlan = obs.PhasePlan
	// PhasePack: prepacked-operand cache resolution.
	PhasePack = obs.PhasePack
	// PhaseCompute: the native kernel execution.
	PhaseCompute = obs.PhaseCompute
	// PhaseScatter: fused-dispatch writeback into each rider's storage.
	PhaseScatter = obs.PhaseScatter
)

// SpanRing is a fixed-capacity ring of completed spans, safe for
// concurrent use and installable directly as a span sink:
//
//	ring := iatf.NewSpanRing(256)
//	eng.SetSpanSink(ring.Add)
//	...
//	iatf.WriteChromeTrace(w, ring.Spans(64))
type SpanRing = obs.SpanRing

// NewSpanRing returns a ring retaining the most recent n spans.
func NewSpanRing(n int) *SpanRing { return obs.NewSpanRing(n) }

// WriteChromeTrace encodes spans as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev: one thread track per span
// with nested per-phase slices.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	return obs.WriteChromeTrace(w, spans)
}

// SetSpanSink installs an engine-level span sink: every request on this
// engine materializes a lifecycle span and fn receives it when the
// request resolves. fn runs synchronously on the resolving goroutine —
// keep it cheap or hand off — and must copy the span if it retains it.
// fn == nil removes the sink and restores the one-atomic-load disabled
// cost.
func (e *Engine) SetSpanSink(fn func(*Span)) {
	if fn == nil {
		e.inner.Obs().SetSpanSink(nil)
		return
	}
	e.inner.Obs().SetSpanSink(obs.SpanFunc(fn))
}

// QueueStats returns only the submission-queue slice of the engine's
// Stats — depth, capacity, the depth high-water mark, the queue-wait
// histogram, and the EDF/window configuration. Unlike Stats it snapshots
// no shape series or cache maps, so a serving tier can afford to consult
// it on every admission decision (internal/serve predicts a new request's
// queue wait from exactly this view).
func (e *Engine) QueueStats() QueueStats { return e.inner.QueueStats() }

// WriteMetrics renders one scrape of the engine's state — build info,
// plan/pack-cache and queue counters (incl. the depth high-water mark
// and the queue-wait histogram), buffer/worker-pool activity, and the
// per-shape achieved-vs-ceiling series — as OpenMetrics text.
func (e *Engine) WriteMetrics(w io.Writer) error { return e.inner.WriteOpenMetrics(w) }

// MetricsHandler returns an http.Handler serving WriteMetrics with the
// OpenMetrics content type, mountable at /metrics for Prometheus-style
// scraping.
func (e *Engine) MetricsHandler() http.Handler { return e.inner.MetricsHandler() }

// SetProfileLabels enables pprof goroutine labels ({op, dtype, shape})
// around compute on this engine, so CPU profiles attribute kernel
// samples to problem shapes. Off by default: label construction
// allocates per dispatch.
func (e *Engine) SetProfileLabels(on bool) { e.inner.SetProfileLabels(on) }

// ResetShapeStats zeroes the engine's per-shape series, the windowed
// delta baseline, and the submission queue's rolling window (the depth
// high-water mark and the queue-wait histogram) — the counters otherwise
// grow unboundedly in a long-running process.
func (e *Engine) ResetShapeStats() { e.inner.ResetShapeStats() }

// ShapeStatsDelta returns each shape's activity since the previous
// ShapeStatsDelta call (or since engine start): counters are windowed
// differences and quantiles cover only the window, so scrape-rate
// computation needs no external state. Shapes with no activity in the
// window are omitted.
func (e *Engine) ShapeStatsDelta() []ShapeStats { return e.inner.Obs().SnapshotDelta() }

// TenantObjective is one tenant's serving contract: the EDF dispatch
// class, the per-request latency objective (the deadline-miss bar when a
// request carries no context deadline), and the SLO attainment target
// the burn rate is computed against (e.g. 0.99). The zero value means
// "tracked, no SLO".
type TenantObjective = obs.TenantObjective

// TenantStats is a point-in-time view of one tenant's SLO series:
// requests/errors/sheds, deadline hits vs misses, the latency histogram
// with p50/p99, and the sliding-window burn rate (window bad-request
// fraction over the SLO error budget; >1 means the objective fails if
// the window's rate holds).
type TenantStats = obs.TenantSnapshot

// SetTenants installs per-tenant SLO objectives and enables tenant
// accounting on this engine: every request tagged with WithTenant is
// classified into its tenant's series, on every resolution path — sync,
// async, fused rider, fuse-time expiry, queue-full rejection. Origins
// not in cfg are tracked with a zero objective; nil disables accounting
// (tagged requests then cost one atomic load).
func (e *Engine) SetTenants(cfg map[string]TenantObjective) { e.inner.SetTenants(cfg) }

// TenantStats returns the engine's per-tenant SLO series, ordered by
// request count (nil when accounting is disabled).
func (e *Engine) TenantStats() []TenantStats { return e.inner.TenantStats() }

// RecordTenantShed accounts one admission-control shed for a tenant — a
// request a serving tier rejected before submitting it. No-op when
// accounting is disabled.
func (e *Engine) RecordTenantShed(name string) { e.inner.RecordTenantShed(name) }

// SetTenants installs per-tenant SLO objectives on every shard; see
// Engine.SetTenants.
func (s *EngineSet) SetTenants(cfg map[string]TenantObjective) { s.inner.SetTenants(cfg) }

// TenantStats returns the cross-shard aggregate of every shard's
// per-tenant series; see Engine.TenantStats.
func (s *EngineSet) TenantStats() []TenantStats { return s.inner.TenantStats() }

// RecordTenantShed accounts one admission-control shed on the tenant's
// name-affine shard; see Engine.RecordTenantShed.
func (s *EngineSet) RecordTenantShed(name string) { s.inner.RecordTenantShed(name) }

// BuildInfo identifies the running module build (module path, version,
// Go toolchain, GOMAXPROCS, SIMD backend) — metrics dumps carry it so
// they are self-describing.
type BuildInfo = engine.BuildInfo

// Build returns the running build's identity.
func Build() BuildInfo { return engine.Build() }
