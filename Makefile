GO ?= go

.PHONY: all build vet test race stress bench info ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the engine layers and the public-API stress
# tests (short mode keeps the kernel property tests from dominating).
race:
	$(GO) test -race -short ./internal/engine/... ./internal/sched/... ./internal/bufpool/... .

stress:
	$(GO) test -race -run 'TestEngineConcurrentStress|TestWorkersAutoConvention' -count=1 -v .

bench:
	$(GO) test -run xxx -bench 'BenchmarkSteadyStateAllocs' -benchtime=2s .

# Print the execution-engine counters after a demo workload.
info:
	$(GO) run ./cmd/iatf-info -engine

ci: vet build test race
