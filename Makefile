GO ?= go

.PHONY: all build vet lint test race stress asyncstress shardstress chainstress servestress tunestress obsstress bench benchsmoke benchdiff info trace monitor metrics ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: staticcheck when installed, go vet as the portable
# fallback so CI never depends on a tool the environment may not have.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not found; falling back to go vet"; $(GO) vet ./...; \
	fi

test:
	$(GO) test ./...

# Race-detector pass over the engine layers and the public-API stress
# tests (short mode keeps the kernel property tests from dominating).
race:
	$(GO) test -race -short ./internal/engine/... ./internal/obs/... ./internal/sched/... ./internal/bufpool/... .

# Engine stress under the race detector, run twice: the concurrent
# dispatch stress, plan single-flight, pool resize and the observability
# layer's concurrent recording.
stress:
	$(GO) test -race -count=2 -run 'TestEngineConcurrentStress|TestWorkersAutoConvention|TestPrepackConcurrentShared' -v .
	$(GO) test -race -count=2 -run 'TestPlanSingleFlight|TestBucketedPlanParity|TestPackCacheSingleFlight' -v ./internal/engine/
	$(GO) test -race -count=2 -run 'TestPoolResize' -v ./internal/sched/
	$(GO) test -race -count=2 -run 'TestSeriesConcurrent' -v ./internal/obs/

# Async submission stress under the race detector, run twice: queue
# backpressure, cancellation, coalescing parity and the concurrent
# Do/Submit front-end — plus the sharded EngineSet front-end.
asyncstress:
	$(GO) test -race -run 'Async|EngineSet' -count=2 . ./internal/engine/

# Sharded scale-out suite under the race detector, run twice: routing
# stability, steal parity (bit-exact), per-shard queue-full fallback,
# shard isolation and the set's steady-state allocation budget.
shardstress:
	$(GO) test -race -run 'TestSet|TestEngineSet' -count=2 . ./internal/engine/

# Cross-op chain suite under the race detector, run twice: bit-exact
# parity against serial execution, packed-handoff elision, mid-chain
# cancellation re-materialization, async chain coalescing and the
# shared-engine sync/async stress.
chainstress:
	$(GO) test -race -run 'Chain' -count=2 . ./internal/engine/

# Serving tier under the race detector, run twice — round-trip numerics,
# admission-control shedding, tenant priority and the concurrent mixed
# workload — then a one-shot in-process smoke of the iatf-serve binary.
servestress:
	$(GO) test -race -count=2 ./internal/serve/
	$(GO) run ./cmd/iatf-serve -once

# Observability suite under the race detector, run twice: trace
# propagation (sync, fused dispatch, serve header echo on every status),
# per-tenant SLO accounting across all resolution paths, burn-window
# epoch eviction, shard aggregation, tenant OpenMetrics validity and the
# tagged warm-path allocation budget.
obsstress:
	$(GO) test -race -run 'Tenant|Trace|Span' -count=2 . ./internal/engine/ ./internal/obs/ ./internal/serve/

# Persistent autotune store under the race detector, run twice: the
# atomic-rename/merge writer race (concurrent iatf-tune), disk round-trip
# bit-exactness, staleness fallbacks, sharded hydration routing and the
# public warm-start path — then a one-shot run of the iatf-tune binary
# against a throwaway store directory.
tunestress:
	$(GO) test -race -count=2 -run 'Store|Tuner|Warm' . ./internal/engine/
	$(GO) test -race -count=2 ./internal/store/
	IATF_STORE_DIR=$$(mktemp -d) $(GO) run ./cmd/iatf-tune -counts 1 -shapes gemm:f32:8x8x8,cholesky:f64:8

# Wall-clock benchmark of the native path — pack-per-call vs prepacked
# operand reuse — writing the rows to BENCH_wallclock.json.
bench:
	$(GO) run ./cmd/iatf-bench -wallclock -json

# One-iteration pass over every Go benchmark: catches bit-rot in the
# benchmark code without paying for real measurements.
benchsmoke:
	$(GO) test -run xxx -bench . -benchtime=1x ./...

# Regression gate: a fresh reduced wallclock run (same batch size as the
# committed baseline, fewer timed calls) diffed against
# BENCH_wallclock.json; fails when any (op, dtype, shape, variant) row's
# per-matrix ns/op regresses by more than 15%. Fatal in ci. Rows report
# the best timed chunk (and cold-start rows the best repetition), so a
# single scheduler stall on a loaded shared host cannot shift a row by
# itself; a failed diff still re-measures once and only a failure on
# BOTH independent runs fails the target — residual noise rarely trips
# twice, a real regression always does. Refresh the baseline with
# `make bench` alongside a deliberate perf-affecting change.
benchdiff:
	$(GO) run ./cmd/iatf-bench -wallclock -json -out /tmp/iatf_wc_new.json -wcalls 64
	@if ! $(GO) run ./cmd/iatf-bench -diff -base BENCH_wallclock.json -new /tmp/iatf_wc_new.json; then \
		echo "benchdiff: row(s) over threshold — re-measuring once to rule out noise"; \
		$(GO) run ./cmd/iatf-bench -wallclock -json -out /tmp/iatf_wc_new.json -wcalls 64 && \
		$(GO) run ./cmd/iatf-bench -diff -base BENCH_wallclock.json -new /tmp/iatf_wc_new.json; \
	fi
	@rm -f /tmp/iatf_wc_new.json

# Print the execution-engine counters and per-shape series after a demo
# workload.
info:
	$(GO) run ./cmd/iatf-info -engine

# Print the command queue the engine assembles for one batched GEMM.
trace:
	$(GO) run ./cmd/iatf-trace -engine

# One OpenMetrics scrape of the default engine after a demo workload.
metrics:
	$(GO) run ./cmd/iatf-info -metrics

# Serve the live monitoring surface (/metrics, /debug/pprof, /trace)
# with a demo workload driving it.
monitor:
	$(GO) run ./cmd/iatf-monitor -demo

# benchdiff gates ci: the diff tool's 15% tolerance absorbs ordinary
# run-to-run noise, so a failure means a real regression (or a baseline
# that needs a deliberate `make bench` refresh alongside the change).
ci: lint build test race stress asyncstress shardstress chainstress servestress tunestress obsstress benchsmoke benchdiff
