GO ?= go

.PHONY: all build vet lint test race stress asyncstress bench benchsmoke benchdiff info trace monitor metrics ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: staticcheck when installed, go vet as the portable
# fallback so CI never depends on a tool the environment may not have.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not found; falling back to go vet"; $(GO) vet ./...; \
	fi

test:
	$(GO) test ./...

# Race-detector pass over the engine layers and the public-API stress
# tests (short mode keeps the kernel property tests from dominating).
race:
	$(GO) test -race -short ./internal/engine/... ./internal/obs/... ./internal/sched/... ./internal/bufpool/... .

# Engine stress under the race detector, run twice: the concurrent
# dispatch stress, plan single-flight, pool resize and the observability
# layer's concurrent recording.
stress:
	$(GO) test -race -count=2 -run 'TestEngineConcurrentStress|TestWorkersAutoConvention|TestPrepackConcurrentShared' -v .
	$(GO) test -race -count=2 -run 'TestPlanSingleFlight|TestBucketedPlanParity|TestPackCacheSingleFlight' -v ./internal/engine/
	$(GO) test -race -count=2 -run 'TestPoolResize' -v ./internal/sched/
	$(GO) test -race -count=2 -run 'TestSeriesConcurrent' -v ./internal/obs/

# Async submission stress under the race detector, run twice: queue
# backpressure, cancellation, coalescing parity and the concurrent
# Do/Submit front-end.
asyncstress:
	$(GO) test -race -run Async -count=2 . ./internal/engine/

# Wall-clock benchmark of the native path — pack-per-call vs prepacked
# operand reuse — writing the rows to BENCH_wallclock.json.
bench:
	$(GO) run ./cmd/iatf-bench -wallclock -json

# One-iteration pass over every Go benchmark: catches bit-rot in the
# benchmark code without paying for real measurements.
benchsmoke:
	$(GO) test -run xxx -bench . -benchtime=1x ./...

# Regression gate: a fresh reduced wallclock run (same batch size as the
# committed baseline, fewer timed calls) diffed against
# BENCH_wallclock.json; fails when any (op, dtype, shape, variant) row's
# per-matrix ns/op regresses by more than 15%. Noisy on loaded machines —
# ci runs it non-fatally; run `make benchdiff` by hand to gate a change.
benchdiff:
	$(GO) run ./cmd/iatf-bench -wallclock -json -out /tmp/iatf_wc_new.json -wcalls 16
	$(GO) run ./cmd/iatf-bench -diff -base BENCH_wallclock.json -new /tmp/iatf_wc_new.json
	@rm -f /tmp/iatf_wc_new.json

# Print the execution-engine counters and per-shape series after a demo
# workload.
info:
	$(GO) run ./cmd/iatf-info -engine

# Print the command queue the engine assembles for one batched GEMM.
trace:
	$(GO) run ./cmd/iatf-trace -engine

# One OpenMetrics scrape of the default engine after a demo workload.
metrics:
	$(GO) run ./cmd/iatf-info -metrics

# Serve the live monitoring surface (/metrics, /debug/pprof, /trace)
# with a demo workload driving it.
monitor:
	$(GO) run ./cmd/iatf-monitor -demo

# benchdiff is non-fatal in ci: wallclock numbers on shared CI hardware
# are too noisy to gate merges, but the comparison is still printed.
ci: lint build test race stress asyncstress benchsmoke
	-$(MAKE) benchdiff
