package iatf

import (
	"math/rand"
	"testing"

	"iatf/internal/matrix"
)

// SYRK against the oracle: all types, both triangles, both transposes,
// sizes spanning single tiles, edges and multiple K chunks.
func TestSYRKAgainstOracle(t *testing.T) {
	testSYRK[float32](t, 1e-3)
	testSYRK[float64](t, 1e-10)
	testSYRK[complex64](t, 1e-3)
	testSYRK[complex128](t, 1e-10)
}

func testSYRK[T Scalar](t *testing.T, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(101))
	for _, uplo := range []Uplo{Lower, Upper} {
		for _, trans := range []Trans{NoTrans, Transpose} {
			for _, nk := range [][2]int{{1, 1}, {3, 5}, {4, 4}, {7, 6}, {12, 9}, {5, 60}} {
				n, k := nk[0], nk[1]
				const count = 5
				ar, ac := n, k
				if trans == Transpose {
					ar, ac = k, n
				}
				a := randBatch[T](rng, count, ar, ac)
				c := randBatch[T](rng, count, n, n)
				alpha, beta := T(2), scalarOfT[T](0.5)

				want := &Batch[T]{inner: c.inner.Clone()}
				matrix.RefSYRKBatch(uplo, trans, alpha, a.inner, beta, want.inner)

				ca, cc := Pack(a), Pack(c)
				if err := SYRK(uplo, trans, alpha, ca, beta, cc); err != nil {
					t.Fatalf("%v %v n=%d k=%d: %v", uplo, trans, n, k, err)
				}
				got := cc.Unpack()
				if !matrix.WithinTol(got.Data(), want.Data(), tol*float64(k)) {
					t.Errorf("%v %v n=%d k=%d: max diff %g", uplo, trans, n, k,
						matrix.MaxAbsDiff(got.Data(), want.Data()))
				}
			}
		}
	}
}

// The untouched triangle of C must be preserved exactly.
func TestSYRKLeavesOtherTriangleAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	const count, n, k = 4, 6, 5
	a := randBatch[float64](rng, count, n, k)
	c := randBatch[float64](rng, count, n, n)
	orig := append([]float64(nil), c.Data()...)
	ca, cc := Pack(a), Pack(c)
	if err := SYRK(Lower, NoTrans, 1.0, ca, 1.0, cc); err != nil {
		t.Fatal(err)
	}
	got := cc.Unpack()
	for m := 0; m < count; m++ {
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ { // strict upper
				if got.At(m, i, j) != orig[m*n*n+j*n+i] {
					t.Fatalf("matrix %d upper (%d,%d) modified", m, i, j)
				}
			}
		}
	}
}

// Parallel SYRK must match sequential exactly.
func TestSYRKParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	const count, n, k = 70, 5, 4
	a := randBatch[float32](rng, count, n, k)
	c := randBatch[float32](rng, count, n, n)
	ca := Pack(a)
	c1, c4 := Pack(c), Pack(c)
	if err := SYRK(Lower, NoTrans, float32(1), ca, float32(1), c1); err != nil {
		t.Fatal(err)
	}
	if err := SYRKParallel(4, Lower, NoTrans, float32(1), ca, float32(1), c4); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(c1.Unpack().Data(), c4.Unpack().Data()) != 0 {
		t.Error("parallel SYRK differs")
	}
}

func TestSYRKErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	a := Pack(randBatch[float64](rng, 2, 3, 4))
	rect := Pack(randBatch[float64](rng, 2, 3, 4))
	if err := SYRK(Lower, NoTrans, 1.0, a, 1.0, rect); err == nil {
		t.Error("non-square C accepted")
	}
	var nilC *Compact[float64]
	if err := SYRK(Lower, NoTrans, 1.0, a, 1.0, nilC); err == nil {
		t.Error("nil C accepted")
	}
}
