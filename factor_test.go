package iatf

import (
	"math/rand"
	"testing"

	"iatf/internal/matrix"
)

// randDominantBatch builds diagonally dominant matrices (safe for
// unpivoted LU and, made symmetric, for Cholesky).
func randDominantBatch[T Scalar](rng *rand.Rand, count, n int) *Batch[T] {
	b := randBatch[T](rng, count, n, n)
	shift := scalarOfT[T](float64(n + 1))
	for m := 0; m < count; m++ {
		for i := 0; i < n; i++ {
			b.Set(m, i, i, b.At(m, i, i)+shift)
		}
	}
	return b
}

// scalarOfT converts a float64 into any supported scalar type.
func scalarOfT[T Scalar](x float64) T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(float32(x)).(T)
	case float64:
		return any(x).(T)
	case complex64:
		return any(complex(float32(x), 0)).(T)
	default:
		return any(complex(x, 0)).(T)
	}
}

// LU then LUSolve must reproduce the solution of the original system.
func TestLUSolveAgainstOracle(t *testing.T) {
	testLUSolve[float32](t, 1e-3)
	testLUSolve[float64](t, 1e-9)
	testLUSolve[complex64](t, 1e-3)
	testLUSolve[complex128](t, 1e-9)
}

func testLUSolve[T Scalar](t *testing.T, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	const count, n, nrhs = 7, 9, 4
	a := randDominantBatch[T](rng, count, n)
	b := randBatch[T](rng, count, n, nrhs)

	ca, cb := Pack(a), Pack(b)
	info, err := LU(ca)
	if err != nil {
		t.Fatal(err)
	}
	if len(info) != count {
		t.Fatalf("info length %d, want %d", len(info), count)
	}
	for m, code := range info {
		if code != 0 {
			t.Fatalf("matrix %d reported singular at column %d", m, code-1)
		}
	}
	if err := LUSolve(ca, cb); err != nil {
		t.Fatal(err)
	}
	x := cb.Unpack()

	// Verify A·X ≈ B with the original A.
	check := NewBatch[T](count, n, nrhs)
	matrix.RefGEMMBatch(NoTrans, NoTrans, T(1), a.inner, x.inner, T(0), check.inner)
	if !matrix.WithinTol(check.Data(), b.Data(), tol) {
		t.Errorf("A·X != B: max diff %g", matrix.MaxAbsDiff(check.Data(), b.Data()))
	}
}

// The LU factors themselves must reconstruct A: L·U = A.
func TestLUFactorsReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const count, n = 5, 6
	a := randDominantBatch[float64](rng, count, n)
	ca := Pack(a)
	if _, err := LU(ca); err != nil {
		t.Fatal(err)
	}
	lu := ca.Unpack()
	for m := 0; m < count; m++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k <= min(i, j); k++ {
					l := lu.At(m, i, k)
					if k == i {
						l = 1
					}
					if k > i {
						l = 0
					}
					u := lu.At(m, k, j)
					if k > j {
						u = 0
					}
					sum += l * u
				}
				if d := sum - a.At(m, i, j); d > 1e-10 || d < -1e-10 {
					t.Fatalf("matrix %d: (L·U)(%d,%d) = %v, want %v", m, i, j, sum, a.At(m, i, j))
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLUSingularDetection(t *testing.T) {
	a := NewBatch[float64](3, 3, 3)
	// Matrix 0: identity (fine). Matrix 1: zero pivot at column 1.
	// Matrix 2: zero pivot at column 0.
	for i := 0; i < 3; i++ {
		a.Set(0, i, i, 1)
	}
	a.Set(1, 0, 0, 1)
	a.Set(1, 2, 2, 1) // (1,1) stays zero
	a.Set(2, 1, 1, 1)
	a.Set(2, 2, 2, 1) // (0,0) stays zero
	ca := Pack(a)
	info, err := LU(ca)
	if err != nil {
		t.Fatal(err)
	}
	if info[0] != 0 || info[1] != 2 || info[2] != 1 {
		t.Errorf("info = %v, want [0 2 1]", info)
	}
}

func TestCholeskySolveAgainstOracle(t *testing.T) {
	testCholesky[float32](t, 1e-3)
	testCholesky[float64](t, 1e-9)
}

func testCholesky[T Scalar](t *testing.T, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	const count, n, nrhs = 6, 7, 3
	// SPD matrices: A = Mᵀ·M + n·I.
	m := randBatch[T](rng, count, n, n)
	a := NewBatch[T](count, n, n)
	matrix.RefGEMMBatch(Transpose, NoTrans, T(1), m.inner, m.inner, T(0), a.inner)
	for v := 0; v < count; v++ {
		for i := 0; i < n; i++ {
			a.Set(v, i, i, a.At(v, i, i)+T(n))
		}
	}
	b := randBatch[T](rng, count, n, nrhs)

	ca, cb := Pack(a), Pack(b)
	info, err := Cholesky(ca)
	if err != nil {
		t.Fatal(err)
	}
	for v, code := range info {
		if code != 0 {
			t.Fatalf("matrix %d not SPD at column %d", v, code-1)
		}
	}
	if err := CholeskySolve(ca, cb); err != nil {
		t.Fatal(err)
	}
	x := cb.Unpack()
	check := NewBatch[T](count, n, nrhs)
	matrix.RefGEMMBatch(NoTrans, NoTrans, T(1), a.inner, x.inner, T(0), check.inner)
	if !matrix.WithinTol(check.Data(), b.Data(), tol) {
		t.Errorf("A·X != B: max diff %g", matrix.MaxAbsDiff(check.Data(), b.Data()))
	}
}

func TestCholeskyComplexRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := Pack(randBatch[complex64](rng, 2, 3, 3))
	if _, err := Cholesky(a); err == nil {
		t.Error("complex Cholesky accepted")
	}
}

func TestCholeskyNonSPDDetected(t *testing.T) {
	a := NewBatch[float64](1, 2, 2)
	a.Set(0, 0, 0, 1)
	a.Set(0, 1, 0, 5)
	a.Set(0, 0, 1, 5)
	a.Set(0, 1, 1, 1) // 1 - 25 < 0 → fails at column 1
	ca := Pack(a)
	info, err := Cholesky(ca)
	if err != nil {
		t.Fatal(err)
	}
	if info[0] != 2 {
		t.Errorf("info = %v, want [2]", info)
	}
}

func TestFactorParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const count, n = 130, 5
	a := randDominantBatch[float32](rng, count, n)
	c1, c4 := Pack(a), Pack(a)
	i1, err := LU(c1)
	if err != nil {
		t.Fatal(err)
	}
	i4, err := LUParallel(4, c4)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(c1.Unpack().Data(), c4.Unpack().Data()) != 0 {
		t.Error("parallel LU differs")
	}
	for i := range i1 {
		if i1[i] != i4[i] {
			t.Fatal("parallel info differs")
		}
	}
}

func TestFactorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	rect := Pack(randBatch[float64](rng, 2, 3, 4))
	if _, err := LU(rect); err == nil {
		t.Error("non-square LU accepted")
	}
	var nilA *Compact[float64]
	if _, err := LU(nilA); err == nil {
		t.Error("nil LU accepted")
	}
	if _, err := Cholesky(rect); err == nil {
		t.Error("non-square Cholesky accepted")
	}
}

// Pivoted LU must handle matrices where the unpivoted factorization
// breaks down (zero leading pivot).
func TestLUPivotedHandlesZeroPivot(t *testing.T) {
	a := NewBatch[float64](1, 2, 2)
	// [[0, 1], [1, 0]] — unpivoted LU fails at column 0.
	a.Set(0, 0, 1, 1)
	a.Set(0, 1, 0, 1)
	b := NewBatch[float64](1, 2, 1)
	b.Set(0, 0, 0, 3)
	b.Set(0, 1, 0, 5)
	ca, cb := Pack(a), Pack(b)

	// Unpivoted reports singularity.
	plain := ca.Clone()
	info, err := LU(plain)
	if err != nil {
		t.Fatal(err)
	}
	if info[0] == 0 {
		t.Fatal("unpivoted LU missed the zero pivot")
	}

	piv, info, err := LUPivoted(ca)
	if err != nil {
		t.Fatal(err)
	}
	if info[0] != 0 {
		t.Fatalf("pivoted LU failed: info=%v", info)
	}
	if err := LUSolvePivoted(ca, piv, cb); err != nil {
		t.Fatal(err)
	}
	x := cb.Unpack()
	// A swaps the entries: x = (5, 3)ᵀ.
	if x.At(0, 0, 0) != 5 || x.At(0, 1, 0) != 3 {
		t.Errorf("x = (%v, %v), want (5, 3)", x.At(0, 0, 0), x.At(0, 1, 0))
	}
}

// Pivoted LU on general random matrices (not diagonally dominant) must
// solve to tight residuals for all four types.
func TestLUPivotedAgainstOracle(t *testing.T) {
	testLUPivOracle[float32](t, 5e-3)
	testLUPivOracle[float64](t, 1e-8)
	testLUPivOracle[complex64](t, 5e-3)
	testLUPivOracle[complex128](t, 1e-8)
}

func testLUPivOracle[T Scalar](t *testing.T, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	const count, n, nrhs = 9, 8, 3
	a := randBatch[T](rng, count, n, n) // general, NOT dominant
	b := randBatch[T](rng, count, n, nrhs)
	ca, cb := Pack(a), Pack(b)
	piv, info, err := LUPivoted(ca)
	if err != nil {
		t.Fatal(err)
	}
	for m, code := range info {
		if code != 0 {
			t.Fatalf("matrix %d flagged singular at %d", m, code-1)
		}
	}
	if err := LUSolvePivoted(ca, piv, cb); err != nil {
		t.Fatal(err)
	}
	x := cb.Unpack()
	check := NewBatch[T](count, n, nrhs)
	matrix.RefGEMMBatch(NoTrans, NoTrans, T(1), a.inner, x.inner, T(0), check.inner)
	if !matrix.WithinTol(check.Data(), b.Data(), tol) {
		t.Errorf("A·X != B: max diff %g", matrix.MaxAbsDiff(check.Data(), b.Data()))
	}
}

func TestLUPivotedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := Pack(randDominantBatch[float64](rng, 3, 4))
	b := Pack(randBatch[float64](rng, 3, 4, 2))
	if err := LUSolvePivoted(a, nil, b); err == nil {
		t.Error("nil pivots accepted")
	}
	rect := Pack(randBatch[float64](rng, 3, 4, 5))
	if _, _, err := LUPivoted(rect); err == nil {
		t.Error("rectangular accepted")
	}
}

// Invert must produce A·A⁻¹ ≈ I for all types.
func TestInvert(t *testing.T) {
	testInvert[float32](t, 1e-3)
	testInvert[float64](t, 1e-9)
	testInvert[complex64](t, 1e-2)
	testInvert[complex128](t, 1e-9)
}

func testInvert[T Scalar](t *testing.T, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(81))
	const count, n = 6, 7
	a := randBatch[T](rng, count, n, n)
	ca := Pack(a)
	inv := ca.Clone()
	info, err := Invert(inv)
	if err != nil {
		t.Fatal(err)
	}
	for m, code := range info {
		if code != 0 {
			t.Fatalf("matrix %d singular at %d", m, code-1)
		}
	}
	prod := NewBatch[T](count, n, n)
	matrix.RefGEMMBatch(NoTrans, NoTrans, T(1), a.inner, inv.Unpack().inner, T(0), prod.inner)
	want := NewBatch[T](count, n, n)
	one := scalarOne[T]()
	for m := 0; m < count; m++ {
		for i := 0; i < n; i++ {
			want.Set(m, i, i, one)
		}
	}
	if !matrix.WithinTol(prod.Data(), want.Data(), tol) {
		t.Errorf("A·A⁻¹ != I: max diff %g", matrix.MaxAbsDiff(prod.Data(), want.Data()))
	}
}

func TestInvertErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	rect := Pack(randBatch[float64](rng, 2, 3, 4))
	if _, err := Invert(rect); err == nil {
		t.Error("rectangular Invert accepted")
	}
}
