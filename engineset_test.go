package iatf

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestEngineSetRouting: a Do routed through a set lands repeatably on
// one shard (the identity's home) and the set surface produces working
// results and per-shard stats.
func TestEngineSetRouting(t *testing.T) {
	set := NewEngineSet(2)
	rng := rand.New(rand.NewSource(40))
	const count = 32
	a := Pack(randBatch[float32](rng, count, 6, 6))
	b := Pack(randBatch[float32](rng, count, 6, 6))
	c := Pack(randBatch[float32](rng, count, 6, 6))
	want := c.Clone()
	if err := GEMM(NoTrans, NoTrans, float32(1), a, b, float32(1), want); err != nil {
		t.Fatal(err)
	}

	req := Request[float32]{Op: OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}
	const calls = 5
	for i := 0; i < calls; i++ {
		if err := Do(context.Background(), req, WithEngineSet(set)); err != nil {
			t.Fatal(err)
		}
	}
	st := set.Stats()
	homes := 0
	for _, sh := range st.Shards {
		if sh.Routed == calls {
			homes++
		} else if sh.Routed != 0 {
			t.Errorf("shard %d routed %d of %d calls — identity split across shards", sh.Shard, sh.Routed, calls)
		}
	}
	if homes != 1 {
		t.Errorf("identity has %d home shards, want exactly 1: %+v", homes, st.Shards)
	}
	if st.Aggregate.PlanMisses != 1 {
		t.Errorf("aggregate plan misses = %d, want 1 (one identity, one home)", st.Aggregate.PlanMisses)
	}
}

// TestEngineSetSteadyStateAllocs enforces the sharded warm sync path's
// allocation budget: routing a prepacked warm call through an EngineSet
// must cost the same ≤2 allocations as the solo-engine path — the
// route-hash and shard pick are plain arithmetic.
func TestEngineSetSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const count = 1024
	a := Pack(randBatch[float32](rng, count, 8, 8))
	b := Pack(randBatch[float32](rng, count, 8, 8))
	c := Pack(randBatch[float32](rng, count, 8, 8))
	a.Prepack()
	b.Prepack()
	set := NewEngineSet(2)
	ctx := context.Background()
	req := Request[float32]{Op: OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}

	// Start every shard's dispatcher (and its steal poller) first: the
	// budget must hold in the real serving configuration, where the
	// background pollers are live and must themselves be allocation-free.
	if err := Do(ctx, req, WithEngineSet(set), WithAsync()); err != nil {
		t.Fatal(err)
	}
	// The future resolves before the dispatcher finishes its post-batch
	// bookkeeping; give that one-time tail a moment so it cannot leak
	// into the measured window.
	time.Sleep(5 * time.Millisecond)

	// Options are plain values: building the slice once and reusing it
	// keeps the measured path free of the per-call variadic allocation,
	// the same way a serving loop would hold its options.
	opts := []Option{WithEngineSet(set)}
	call := func() {
		if err := Do(ctx, req, opts...); err != nil {
			t.Fatal(err)
		}
	}
	call() // warm: plan + packed images on the home shard

	before := set.Stats()
	allocs := testing.AllocsPerRun(50, call)
	if allocs > 2 {
		// One retry: the live steal pollers allocate nothing in steady
		// state, but a stray background one-time cost (GC, poller timer)
		// can pollute a single window.
		allocs = testing.AllocsPerRun(50, call)
	}
	after := set.Stats()

	if after.Aggregate.PackCache.Builds != before.Aggregate.PackCache.Builds {
		t.Errorf("warm set calls rebuilt packed images: %d -> %d",
			before.Aggregate.PackCache.Builds, after.Aggregate.PackCache.Builds)
	}
	if after.Aggregate.PlanMisses != before.Aggregate.PlanMisses {
		t.Errorf("warm set calls built plans: misses %d -> %d",
			before.Aggregate.PlanMisses, after.Aggregate.PlanMisses)
	}
	if allocs > 2 {
		t.Errorf("warm sharded GEMM allocates %.0f objects/call, want <= 2", allocs)
	}
}

// TestEngineSetQueueCapacityContract: capacity is settable between
// construction and the first Submit, and rejected with ErrQueueStarted
// afterwards.
func TestEngineSetQueueCapacityContract(t *testing.T) {
	set := NewEngineSet(2)
	if err := set.SetQueueCapacity(16); err != nil {
		t.Fatalf("SetQueueCapacity before first Submit: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	a := Pack(randBatch[float32](rng, 8, 4, 4))
	b := Pack(randBatch[float32](rng, 8, 4, 4))
	c := Pack(randBatch[float32](rng, 8, 4, 4))
	req := Request[float32]{Op: OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}
	if err := Do(context.Background(), req, WithEngineSet(set), WithAsync()); err != nil {
		t.Fatal(err)
	}
	if err := set.SetQueueCapacity(32); err == nil {
		t.Fatal("SetQueueCapacity after first Submit succeeded, want ErrQueueStarted")
	}
}
